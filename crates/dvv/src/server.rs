//! Server-side algorithms over sibling sets of DVV-tagged versions:
//! [`update`] (coordinate a client write) and [`sync`] (merge replica
//! states), exactly as in the paper's storage-system protocol.
//!
//! A multi-version store keeps, per key, a small set of **siblings** —
//! versions no one of which causally dominates another. Clients read all
//! siblings plus a *context* (the join of their clocks), do their
//! read-modify-write, and submit the new value together with that context.

use core::fmt;

use crate::actor::Actor;
use crate::dot::Dot;
use crate::dotted::Dvv;
use crate::version_vector::VersionVector;

/// A value tagged with its dotted-version-vector clock.
///
/// # Examples
///
/// ```
/// use dvv::server::Tagged;
/// use dvv::{Dot, VersionVector};
/// use dvv::dotted::Dvv;
/// let t = Tagged::new(Dvv::new(Dot::new("A", 1), VersionVector::new()), "v1");
/// assert_eq!(t.value, "v1");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Tagged<A: Ord, V> {
    /// The version's clock.
    pub clock: Dvv<A>,
    /// The application value.
    pub value: V,
}

impl<A: Actor, V> Tagged<A, V> {
    /// Tags `value` with `clock`.
    pub fn new(clock: Dvv<A>, value: V) -> Self {
        Tagged { clock, value }
    }
}

impl<A: Actor + fmt::Display, V: fmt::Display> fmt::Display for Tagged<A, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.clock, self.value)
    }
}

/// The read *context* of a sibling set: the join of all sibling clocks.
///
/// This is the plain version vector a client receives on GET and must echo
/// back on PUT; it is what makes the subsequent write dominate everything
/// the client saw.
///
/// # Examples
///
/// ```
/// use dvv::server::{context, Tagged};
/// use dvv::{Dot, VersionVector};
/// use dvv::dotted::Dvv;
/// let s = vec![Tagged::new(Dvv::new(Dot::new("A", 2), VersionVector::new()), 1)];
/// assert_eq!(context(&s).get(&"A"), 2);
/// ```
#[must_use]
pub fn context<A: Actor, V>(siblings: &[Tagged<A, V>]) -> VersionVector<A> {
    let mut ctx = VersionVector::new();
    for s in siblings {
        ctx.merge(s.clock.past());
        ctx.record(s.clock.dot().clone());
    }
    ctx
}

/// Coordinates a client write at replica `server`: generates the new
/// version's clock, discards the siblings it obsoletes, and inserts it.
///
/// Following the paper (§2, *efficient causality tracking in replicated
/// storage systems*) and the tech report's `update` function:
///
/// 1. the new dot is `(server, n+1)` where `n` is the highest counter of
///    `server` known locally (across all sibling clocks) or present in the
///    client context — the server never reuses a counter;
/// 2. the new version's causal past is exactly the client's context `ctx`;
/// 3. a sibling is obsolete iff its dot is contained in `ctx` (an O(1)
///    containment test per sibling — *not* a vector comparison).
///
/// Returns the clock of the newly written version.
///
/// # Examples
///
/// Reproducing Figure 1c's concurrent writes through server `"A"`:
///
/// ```
/// use dvv::server::{update, context};
/// use dvv::VersionVector;
///
/// let mut siblings = Vec::new();
/// // First client writes having read nothing:
/// let v1 = update(&mut siblings, &VersionVector::new(), "A", "w1");
/// let ctx = context(&siblings); // a client reads v1
/// // …and writes back:
/// let v2 = update(&mut siblings, &ctx, "A", "w2");
/// // A slow client that also read v1 writes concurrently:
/// let v3 = update(&mut siblings, &ctx, "A", "w3");
/// assert_eq!(siblings.len(), 2, "v2 and v3 are kept as concurrent siblings");
/// assert!(v2.concurrent(&v3));
/// # let _ = v1;
/// ```
pub fn update<A: Actor, V>(
    siblings: &mut Vec<Tagged<A, V>>,
    ctx: &VersionVector<A>,
    server: A,
    value: V,
) -> Dvv<A> {
    update_with_floor(siblings, ctx, server, value, 0)
}

/// [`update`] with an additional per-server counter *floor*: the minted
/// counter is strictly greater than `floor` as well as everything known
/// locally or in `ctx`.
///
/// The floor is the hook for crash recovery under coarse durability: a
/// replica whose log lost its unsynced tail can have replayed counters
/// *below* dots that already escaped to peers before the crash. Passing
/// the durably reserved counter ceiling as `floor` makes the lost
/// tail's dots unreachable — the server can never re-mint one of them
/// for a different value. A floor of `0` is exactly [`update`].
pub fn update_with_floor<A: Actor, V>(
    siblings: &mut Vec<Tagged<A, V>>,
    ctx: &VersionVector<A>,
    server: A,
    value: V,
    floor: u64,
) -> Dvv<A> {
    let counter = max_counter_of(siblings, &server)
        .max(ctx.get(&server))
        .max(floor)
        + 1;
    let dot = Dot::new(server, counter);
    let clock = Dvv::new(dot, ctx.clone());

    siblings.retain(|s| !ctx.contains(s.clock.dot()));
    siblings.push(Tagged::new(clock.clone(), value));
    canonicalize(siblings);
    clock
}

/// Sorts a sibling set into its canonical representation: ascending by dot.
///
/// Sibling sets are logically unordered, but they are stored and hashed as
/// vectors — anti-entropy fingerprints two replicas' states structurally.
/// Keeping every mutation path canonical makes [`sync`] commutative at the
/// representation level, so replicas that hold the same *set* of versions
/// also hold the same *vector* and their Merkle leaves agree.
pub fn canonicalize<A: Actor, V>(siblings: &mut [Tagged<A, V>]) {
    siblings.sort_by(|a, b| a.clock.dot().cmp(b.clock.dot()));
}

/// The highest counter of `actor` appearing anywhere in the sibling set —
/// in a dot or in a causal past. This is the server's local knowledge used
/// to generate fresh dots.
#[must_use]
pub fn max_counter_of<A: Actor, V>(siblings: &[Tagged<A, V>], actor: &A) -> u64 {
    siblings
        .iter()
        .map(|s| {
            let in_dot = if s.clock.dot().actor() == actor {
                s.clock.dot().counter()
            } else {
                0
            };
            in_dot.max(s.clock.past().get(actor))
        })
        .max()
        .unwrap_or(0)
}

/// Merges two replicas' sibling sets (anti-entropy / replicated put).
///
/// A version survives iff no version on the other side *strictly dominates*
/// it; versions present on both sides (same dot) are kept once. Each
/// pairwise check is the O(1) dot-containment test.
///
/// The result is returned as a fresh vector in canonical (dot-sorted)
/// order — see [`canonicalize`]; inputs are unchanged.
///
/// # Examples
///
/// ```
/// use dvv::server::{update, sync};
/// use dvv::VersionVector;
///
/// let mut at_a = Vec::new();
/// update(&mut at_a, &VersionVector::new(), "A", 1);
/// let mut at_b = Vec::new();
/// update(&mut at_b, &VersionVector::new(), "B", 2);
/// let merged = sync(&at_a, &at_b);
/// assert_eq!(merged.len(), 2, "independent writes are concurrent");
/// ```
#[must_use]
pub fn sync<A: Actor, V: Clone>(s1: &[Tagged<A, V>], s2: &[Tagged<A, V>]) -> Vec<Tagged<A, V>> {
    let mut out: Vec<Tagged<A, V>> = Vec::with_capacity(s1.len() + s2.len());
    for x in s1 {
        let dominated = s2
            .iter()
            .any(|y| y.clock.dot() != x.clock.dot() && y.clock.past().contains(x.clock.dot()));
        if !dominated {
            out.push(x.clone());
        }
    }
    for y in s2 {
        let dominated = s1
            .iter()
            .any(|x| x.clock.dot() != y.clock.dot() && x.clock.past().contains(y.clock.dot()));
        let duplicate = out.iter().any(|x| x.clock.dot() == y.clock.dot());
        if !dominated && !duplicate {
            out.push(y.clone());
        }
    }
    canonicalize(&mut out);
    out
}

/// Merges `remote` into `local` in place (see [`sync`]).
pub fn sync_into<A: Actor, V: Clone>(local: &mut Vec<Tagged<A, V>>, remote: &[Tagged<A, V>]) {
    *local = sync(local, remote);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::CausalOrder;

    type Sib = Vec<Tagged<&'static str, &'static str>>;

    #[test]
    fn update_on_empty_store_creates_first_dot() {
        let mut s: Sib = Vec::new();
        let c = update(&mut s, &VersionVector::new(), "A", "v1");
        assert_eq!(c.dot(), &Dot::new("A", 1));
        assert!(c.past().is_empty());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn causal_write_replaces_predecessor() {
        let mut s: Sib = Vec::new();
        update(&mut s, &VersionVector::new(), "A", "v1");
        let ctx = context(&s);
        let c2 = update(&mut s, &ctx, "A", "v2");
        assert_eq!(s.len(), 1, "v1 was dominated and discarded");
        assert_eq!(s[0].value, "v2");
        assert_eq!(c2.dot(), &Dot::new("A", 2));
    }

    #[test]
    fn concurrent_client_writes_become_siblings_figure_1c() {
        let mut s: Sib = Vec::new();
        update(&mut s, &VersionVector::new(), "A", "v1");
        let ctx = context(&s); // both clients read v1
        let c2 = update(&mut s, &ctx, "A", "v2");
        let c3 = update(&mut s, &ctx, "A", "v3");
        assert_eq!(s.len(), 2);
        // Exactly the paper's (A,2)[A:1] || (A,3)[A:1]
        assert_eq!(c2.dot(), &Dot::new("A", 2));
        assert_eq!(c3.dot(), &Dot::new("A", 3));
        assert_eq!(c2.causal_cmp(&c3), CausalOrder::Concurrent);
    }

    #[test]
    fn stale_context_write_keeps_newer_sibling() {
        let mut s: Sib = Vec::new();
        update(&mut s, &VersionVector::new(), "A", "v1");
        let stale = context(&s);
        let fresh = context(&s);
        let c2 = update(&mut s, &fresh, "A", "v2");
        // Client with stale (pre-v2) context writes now:
        let c3 = update(&mut s, &stale, "A", "v3");
        assert_eq!(s.len(), 2);
        assert_eq!(c2.causal_cmp(&c3), CausalOrder::Concurrent);
    }

    #[test]
    fn write_covering_both_siblings_collapses_them() {
        let mut s: Sib = Vec::new();
        update(&mut s, &VersionVector::new(), "A", "v1");
        let ctx1 = context(&s);
        update(&mut s, &ctx1, "A", "v2");
        update(&mut s, &ctx1, "A", "v3");
        assert_eq!(s.len(), 2);
        let ctx_all = context(&s);
        let c4 = update(&mut s, &ctx_all, "A", "v4");
        assert_eq!(
            s.len(),
            1,
            "a write that saw everything replaces everything"
        );
        assert_eq!(s[0].value, "v4");
        assert_eq!(c4.dot(), &Dot::new("A", 4), "counter keeps increasing");
    }

    #[test]
    fn counters_never_reused_after_discard() {
        let mut s: Sib = Vec::new();
        update(&mut s, &VersionVector::new(), "A", "v1");
        let ctx = context(&s);
        update(&mut s, &ctx, "A", "v2"); // discards v1; (A,2)
        let ctx2 = context(&s);
        let c3 = update(&mut s, &ctx2, "A", "v3"); // must be (A,3), not (A,2)
        assert_eq!(c3.dot(), &Dot::new("A", 3));
    }

    #[test]
    fn floor_lifts_minted_counter_above_lost_tail() {
        // Replayed state knows (A,2); peers hold up to (A,9) from a lost
        // tail. With the reserved ceiling 9 as floor, the fresh dot must
        // be (A,10) even though nothing local mentions counters 3..=9.
        let mut s: Sib = Vec::new();
        let mut ctx = VersionVector::new();
        ctx.set("A", 2);
        let c = update_with_floor(&mut s, &ctx, "A", "v", 9);
        assert_eq!(c.dot(), &Dot::new("A", 10));
        // a zero floor is exactly `update`
        let mut s2: Sib = Vec::new();
        let c2 = update_with_floor(&mut s2, &VersionVector::new(), "A", "v", 0);
        assert_eq!(c2.dot(), &Dot::new("A", 1));
    }

    #[test]
    fn context_from_foreign_replica_bumps_counter() {
        // ctx mentions (A,5) even though this replica has no local siblings;
        // the fresh dot must be (A,6) to avoid reuse.
        let mut s: Sib = Vec::new();
        let mut ctx = VersionVector::new();
        ctx.set("A", 5);
        let c = update(&mut s, &ctx, "A", "v");
        assert_eq!(c.dot(), &Dot::new("A", 6));
    }

    #[test]
    fn max_counter_considers_dots_and_pasts() {
        let mut s: Sib = Vec::new();
        let mut ctx = VersionVector::new();
        ctx.set("B", 7);
        update(&mut s, &ctx, "A", "v1");
        assert_eq!(max_counter_of(&s, &"A"), 1);
        assert_eq!(max_counter_of(&s, &"B"), 7);
        assert_eq!(max_counter_of(&s, &"C"), 0);
    }

    #[test]
    fn sync_drops_dominated_versions() {
        let mut s1: Sib = Vec::new();
        update(&mut s1, &VersionVector::new(), "A", "v1");
        let mut s2 = s1.clone();
        let ctx = context(&s2);
        update(&mut s2, &ctx, "A", "v2"); // dominates v1
        let merged = sync(&s1, &s2);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].value, "v2");
        // symmetric
        let merged_rev = sync(&s2, &s1);
        assert_eq!(merged_rev.len(), 1);
        assert_eq!(merged_rev[0].value, "v2");
    }

    #[test]
    fn sync_keeps_concurrent_versions_from_both_sides() {
        let mut s1: Sib = Vec::new();
        update(&mut s1, &VersionVector::new(), "A", "va");
        let mut s2: Sib = Vec::new();
        update(&mut s2, &VersionVector::new(), "B", "vb");
        let merged = sync(&s1, &s2);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn sync_deduplicates_common_versions() {
        let mut s1: Sib = Vec::new();
        update(&mut s1, &VersionVector::new(), "A", "v1");
        let s2 = s1.clone();
        let merged = sync(&s1, &s2);
        assert_eq!(merged.len(), 1);
    }

    #[test]
    fn sync_is_idempotent_and_commutative_on_fixture() {
        let mut s1: Sib = Vec::new();
        update(&mut s1, &VersionVector::new(), "A", "v1");
        let ctx = context(&s1);
        update(&mut s1, &ctx, "A", "v2");
        let mut s2: Sib = Vec::new();
        update(&mut s2, &VersionVector::new(), "B", "v3");

        let m12 = sync(&s1, &s2);
        let m21 = sync(&s2, &s1);
        assert_eq!(m12.len(), m21.len());
        let again = sync(&m12, &m12);
        assert_eq!(again.len(), m12.len());

        // associativity with a third replica
        let mut s3: Sib = Vec::new();
        update(&mut s3, &VersionVector::new(), "C", "v4");
        let left = sync(&sync(&s1, &s2), &s3);
        let right = sync(&s1, &sync(&s2, &s3));
        assert_eq!(left.len(), right.len());
    }

    #[test]
    fn sync_into_mutates_local() {
        let mut s1: Sib = Vec::new();
        update(&mut s1, &VersionVector::new(), "A", "v1");
        let mut s2: Sib = Vec::new();
        update(&mut s2, &VersionVector::new(), "B", "v2");
        sync_into(&mut s1, &s2);
        assert_eq!(s1.len(), 2);
    }

    #[test]
    fn full_figure_1_replay_with_two_servers() {
        // Figure 1c end-to-end: servers A and B, three clients.
        let mut a: Sib = Vec::new();
        let mut b: Sib = Vec::new();

        // c1 writes v1 at A having read nothing: (A,1)[]
        update(&mut a, &VersionVector::new(), "A", "v1");
        let ctx_v1 = context(&a);

        // c1 re-reads and writes v2 at A: (A,2)[A:1]
        update(&mut a, &ctx_v1, "A", "v2");

        // c2 (read v1 earlier) writes v3 at A: (A,3)[A:1] — concurrent with v2
        update(&mut a, &ctx_v1, "A", "v3");
        assert_eq!(a.len(), 2);

        // replication A → B
        sync_into(&mut b, &a);
        assert_eq!(b.len(), 2);

        // c3 reads everything at B and writes v4 at B: (B,1)[A:3]
        let ctx_all = context(&b);
        let c4 = update(&mut b, &ctx_all, "B", "v4");
        assert_eq!(b.len(), 1);
        assert_eq!(c4.dot(), &Dot::new("B", 1));

        // replication B → A collapses A's siblings too
        sync_into(&mut a, &b);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].value, "v4");
    }

    #[test]
    fn tagged_display() {
        let t = Tagged::new(Dvv::new(Dot::new("A", 1), VersionVector::new()), "x");
        assert_eq!(t.to_string(), "(A,1)[]=x");
    }
}
