//! Pluggable per-key causality-tracking mechanisms.
//!
//! The paper's evaluation compares how different logical-clock designs
//! behave when embedded in a multi-version distributed store. This module
//! factors that embedding into one trait, [`Mechanism`]: everything a
//! Dynamo-style store needs to do with causal metadata — serve a read with
//! a context, coordinate a write, merge replica states, and account for
//! metadata size. Each design from the paper is one implementation:
//!
//! | Implementation | Paper role |
//! |---|---|
//! | [`DvvMechanism`] | the contribution (one [`Dvv`](crate::dotted::Dvv) per sibling) |
//! | [`DvvSetMechanism`] | the compact sibling-set extension |
//! | [`CausalHistoryMechanism`] | exact ground truth (impractically large) |
//! | [`VvClientMechanism`] | classic Riak: one VV entry per client, optional unsafe pruning |
//! | [`VvServerMechanism`] | Coda/Ficus: one VV entry per server — loses concurrent client writes (Figure 1b) |
//! | [`LamportMechanism`] | last-writer-wins strawman |
//! | [`OrderedVvMechanism`] | Wang & Amza's sorted VVs with a fast dominance path |
//! | [`VveMechanism`] | WinFS: dot + version-vector-with-exceptions past |

mod causal_histories;
mod dvv_mech;
mod dvvset_mech;
mod lamport;
mod ordered_vv;
mod vv_client;
mod vv_server;
mod vve_mech;

pub use causal_histories::CausalHistoryMechanism;
pub use dvv_mech::DvvMechanism;
pub use dvvset_mech::DvvSetMechanism;
pub use lamport::LamportMechanism;
pub use ordered_vv::{OrderedVv, OrderedVvMechanism};
pub use vv_client::{PruneConfig, VvClientMechanism};
pub use vv_server::VvServerMechanism;
pub use vve_mech::{VveClock, VveMechanism};

use core::fmt::Debug;

use crate::encode::{Decoder, Encode};
use crate::error::DecodeError;
use crate::ids::{ClientId, ReplicaId};

/// Identity of a write request as seen by a mechanism: which replica
/// coordinates it and which client issued it.
///
/// The DVV family assigns the new dot to the **replica**; the per-client
/// baseline assigns the new vector entry to the **client**. Passing both
/// lets every mechanism pick its principal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WriteOrigin {
    /// The replica server coordinating the write.
    pub server: ReplicaId,
    /// The client issuing the write.
    pub client: ClientId,
}

impl WriteOrigin {
    /// Creates a write origin.
    #[must_use]
    pub fn new(server: ReplicaId, client: ClientId) -> Self {
        WriteOrigin { server, client }
    }
}

/// A causality-tracking mechanism: the complete per-key protocol a
/// multi-version store delegates to.
///
/// `V` is the application value type; the store instantiates it with a
/// stamped value so the test oracle can identify every write.
///
/// # Contract
///
/// * [`read`](Mechanism::read) returns all live (mutually concurrent)
///   values plus the opaque *context* a client must echo on its next
///   write for read-modify-write causality.
/// * [`write`](Mechanism::write) installs a new value that causally
///   dominates everything in `ctx` (and nothing else).
/// * [`merge`](Mechanism::merge) is a join: commutative, associative and
///   idempotent over states, used for replication and anti-entropy.
/// * [`metadata_size`](Mechanism::metadata_size) is the wire size in bytes
///   of the causal metadata only (no application values), measured with
///   the crate's [`encode`](crate::encode) format.
pub trait Mechanism<V: Clone>: Clone + Debug {
    /// Complete per-key state at one replica (clocks and values).
    /// `Hash`/`Eq` support anti-entropy fingerprints and read repair.
    /// `Send + 'static` lets states cross thread boundaries in the
    /// threaded runtime driver and live behind boxed storage engines.
    type State: Clone + Debug + Default + PartialEq + core::hash::Hash + Send + 'static;
    /// What a reader gets besides the values, and must echo on write.
    type Context: Clone + Debug + Default;

    /// Short stable name for reports and tables (e.g. `"dvv"`).
    fn name(&self) -> &'static str;

    /// Serves a GET: all sibling values plus the read context.
    fn read(&self, state: &Self::State) -> (Vec<V>, Self::Context);

    /// Coordinates a PUT with read context `ctx` at `origin`.
    fn write(&self, state: &mut Self::State, origin: WriteOrigin, ctx: &Self::Context, value: V);

    /// [`write`](Mechanism::write) with a per-server dot-counter *floor*:
    /// a mechanism that mints `(server, counter)` dots must mint strictly
    /// above `floor` and return the minted counter. The floor is the
    /// crash-recovery epoch guard's hook — after a coarse-durability
    /// restart the store passes its durably reserved counter ceiling so
    /// the lost tail's dots can never be re-minted for different values.
    ///
    /// Mechanisms without server-assigned counters ignore the floor and
    /// return `None`; the default forwards to [`write`](Mechanism::write).
    fn write_with_floor(
        &self,
        state: &mut Self::State,
        origin: WriteOrigin,
        ctx: &Self::Context,
        value: V,
        floor: u64,
    ) -> Option<u64> {
        let _ = floor;
        self.write(state, origin, ctx, value);
        None
    }

    /// Every live version's identity dot, as `((replica, counter), value)`
    /// pairs — the raw material of the fleet-wide dot-uniqueness oracle
    /// (no `(replica, counter)` pair may ever map to two distinct values).
    ///
    /// Mechanisms whose versions are not identified by a single
    /// replica-assigned dot return the empty vector (the oracle then has
    /// nothing to check for them).
    fn dot_map(&self, state: &Self::State) -> Vec<((ReplicaId, u64), V)> {
        let _ = state;
        Vec::new()
    }

    /// Merges a remote replica's state into the local one (replication
    /// delivery or anti-entropy).
    fn merge(&self, local: &mut Self::State, remote: &Self::State);

    /// Joins two read contexts: the combined causal knowledge of a client
    /// that performed both reads. Sessions accumulate contexts with this
    /// (instead of replacing them) to get monotonic session causality —
    /// a quorum read may otherwise return a context that regresses behind
    /// an earlier read's.
    fn merge_contexts(&self, into: &mut Self::Context, from: &Self::Context);

    /// Wire size in bytes of the causal metadata in `state`.
    fn metadata_size(&self, state: &Self::State) -> usize;

    /// Wire size in bytes of a read context.
    fn context_size(&self, ctx: &Self::Context) -> usize;

    /// Number of live sibling values in `state`.
    fn sibling_count(&self, state: &Self::State) -> usize;

    /// Whether the state holds no live values.
    fn is_empty(&self, state: &Self::State) -> bool {
        self.sibling_count(state) == 0
    }
}

/// A mechanism whose states and contexts have a *real* byte codec whose
/// output length equals the modeled accounting exactly.
///
/// [`Mechanism::metadata_size`] and [`Mechanism::context_size`] model what
/// causal metadata *would* cost on the wire; the simulator ships opaque
/// placeholder blobs of exactly that size. A real network driver must ship
/// parseable bytes instead — and for the byte ledger to remain ground
/// truth across drivers, the real encoding must cost **exactly** what the
/// model charges:
///
/// * `encode_state` output length `== metadata_size(state)` plus the sum
///   of the values' [`Encode::encoded_len`]s;
/// * `encode_context` output length `== context_size(ctx)`.
///
/// Implement this only where the equality is exact. [`DvvMechanism`]
/// qualifies (its metadata model *is* the sum of per-sibling clock
/// encodings). [`DvvSetMechanism`] does not: its model treats live dots as
/// positional (context + one varint), but a parseable codec needs the
/// per-actor value partition, which costs bytes the model excludes — a
/// real driver for it would need a model revision first.
///
/// `decode_state` consumes the decoder's entire remaining input: states
/// travel length-prefixed, so the caller scopes the decoder to the state's
/// bytes. Decoders must never panic on malformed input — a driver maps
/// any [`DecodeError`] to a dropped connection.
pub trait WireMechanism<V: Clone + Encode>: Mechanism<V> {
    /// Appends the real wire form of `state` (clocks and values).
    fn encode_state(&self, state: &Self::State, buf: &mut Vec<u8>);

    /// Parses a state back, consuming all remaining decoder input.
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`] on malformed input.
    fn decode_state(&self, d: &mut Decoder<'_>) -> Result<Self::State, DecodeError>;

    /// Appends the real wire form of a read context.
    fn encode_context(&self, ctx: &Self::Context, buf: &mut Vec<u8>);

    /// Parses a context back.
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`] on malformed input.
    fn decode_context(&self, d: &mut Decoder<'_>) -> Result<Self::Context, DecodeError>;
}

/// Generic sibling-set merge for mechanisms whose state is a flat list of
/// `(clock, value)` pairs: a version survives iff no version on the other
/// side strictly dominates it (per `dominated`), deduplicated by `same`.
pub(crate) fn merge_siblings<C: Clone, V: Clone>(
    local: &mut Vec<(C, V)>,
    remote: &[(C, V)],
    dominated: impl Fn(&C, &C) -> bool,
    same: impl Fn(&C, &C) -> bool,
) {
    let mut out: Vec<(C, V)> = Vec::with_capacity(local.len() + remote.len());
    for x in local.iter() {
        if !remote.iter().any(|y| dominated(&x.0, &y.0)) {
            out.push(x.clone());
        }
    }
    for y in remote {
        let dominated_by_local = local.iter().any(|x| dominated(&y.0, &x.0));
        let duplicate = out.iter().any(|x| same(&x.0, &y.0));
        if !dominated_by_local && !duplicate {
            out.push(y.clone());
        }
    }
    *local = out;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_origin_construction() {
        let o = WriteOrigin::new(ReplicaId(1), ClientId(2));
        assert_eq!(o.server, ReplicaId(1));
        assert_eq!(o.client, ClientId(2));
    }

    #[test]
    fn merge_siblings_keeps_concurrent_drops_dominated() {
        // clocks are plain integers; x dominated by y iff x < y
        let mut local = vec![(1u64, "a"), (5, "b")];
        let remote = vec![(3u64, "c"), (5, "b2")];
        merge_siblings(&mut local, &remote, |x, y| x < y, |x, y| x == y);
        // 1 dominated by 3 and 5; 3 dominated by local 5; 5 deduplicated
        assert_eq!(local, vec![(5, "b")]);
    }

    #[test]
    fn merge_siblings_empty_cases() {
        let mut local: Vec<(u64, &str)> = vec![];
        merge_siblings(&mut local, &[(1, "x")], |x, y| x < y, |x, y| x == y);
        assert_eq!(local, vec![(1, "x")]);
        let mut local = vec![(2u64, "y")];
        merge_siblings(&mut local, &[], |x, y| x < y, |x, y| x == y);
        assert_eq!(local, vec![(2, "y")]);
    }
}
