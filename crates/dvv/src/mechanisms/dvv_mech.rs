//! [`DvvMechanism`]: the paper's design — one dotted version vector per
//! sibling, dots assigned at replica servers.

use crate::encode::Encode;
use crate::ids::ReplicaId;
use crate::server::{self, Tagged};
use crate::version_vector::VersionVector;

use super::{Mechanism, WriteOrigin};

/// The paper's causality mechanism: each sibling carries a
/// [`Dvv`](crate::dotted::Dvv) whose dot is assigned by the coordinating
/// replica; contexts are plain version vectors with **one entry per
/// replica**, regardless of how many clients write.
///
/// # Examples
///
/// ```
/// use dvv::mechanisms::{DvvMechanism, Mechanism, WriteOrigin};
/// use dvv::{ReplicaId, ClientId};
///
/// let m = DvvMechanism::default();
/// let mut state = Default::default();
/// let origin = WriteOrigin::new(ReplicaId(0), ClientId(1));
/// let (_, ctx) = m.read(&state);
/// m.write(&mut state, origin, &ctx, "v1");
/// let (values, _) = m.read(&state);
/// assert_eq!(values, vec!["v1"]);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DvvMechanism;

impl<V: Clone + core::fmt::Debug + Eq + core::hash::Hash + Send + 'static> Mechanism<V>
    for DvvMechanism
{
    type State = Vec<Tagged<ReplicaId, V>>;
    type Context = VersionVector<ReplicaId>;

    fn name(&self) -> &'static str {
        "dvv"
    }

    fn read(&self, state: &Self::State) -> (Vec<V>, Self::Context) {
        let values = state.iter().map(|t| t.value.clone()).collect();
        (values, server::context(state))
    }

    fn write(&self, state: &mut Self::State, origin: WriteOrigin, ctx: &Self::Context, value: V) {
        server::update(state, ctx, origin.server, value);
    }

    fn merge(&self, local: &mut Self::State, remote: &Self::State) {
        server::sync_into(local, remote);
    }

    fn merge_contexts(&self, into: &mut Self::Context, from: &Self::Context) {
        into.merge(from);
    }

    fn metadata_size(&self, state: &Self::State) -> usize {
        state.iter().map(|t| t.clock.encoded_len()).sum()
    }

    fn context_size(&self, ctx: &Self::Context) -> usize {
        ctx.encoded_len()
    }

    fn sibling_count(&self, state: &Self::State) -> usize {
        state.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;

    fn origin(s: u32, c: u64) -> WriteOrigin {
        WriteOrigin::new(ReplicaId(s), ClientId(c))
    }

    type State = Vec<Tagged<ReplicaId, &'static str>>;

    #[test]
    fn read_modify_write_replaces() {
        let m = DvvMechanism;
        let mut st: State = Vec::new();
        let (_, ctx) = m.read(&st);
        m.write(&mut st, origin(0, 1), &ctx, "v1");
        let (vals, ctx) = m.read(&st);
        assert_eq!(vals, vec!["v1"]);
        m.write(&mut st, origin(0, 1), &ctx, "v2");
        let (vals, _) = m.read(&st);
        assert_eq!(vals, vec!["v2"]);
    }

    #[test]
    fn concurrent_clients_both_kept_one_entry_per_server() {
        let m = DvvMechanism;
        let mut st: State = Vec::new();
        let (_, ctx0) = m.read(&st);
        m.write(&mut st, origin(0, 1), &ctx0, "v1");
        let (_, ctx1) = m.read(&st);
        // two clients write with the same context through the same server
        m.write(&mut st, origin(0, 1), &ctx1, "a");
        m.write(&mut st, origin(0, 2), &ctx1, "b");
        assert_eq!(m.sibling_count(&st), 2);
        let (_, ctx) = m.read(&st);
        assert_eq!(ctx.len(), 1, "context has one entry for the single server");
    }

    #[test]
    fn merge_converges_replicas() {
        let m = DvvMechanism;
        let mut a: State = Vec::new();
        let mut b: State = Vec::new();
        m.write(&mut a, origin(0, 1), &VersionVector::new(), "at-a");
        m.write(&mut b, origin(1, 2), &VersionVector::new(), "at-b");
        let a0 = a.clone();
        m.merge(&mut a, &b);
        m.merge(&mut b, &a0);
        assert_eq!(m.sibling_count(&a), 2);
        assert_eq!(m.sibling_count(&b), 2);
        let (mut va, _) = m.read(&a);
        let (mut vb, _) = m.read(&b);
        va.sort();
        vb.sort();
        assert_eq!(va, vb);
    }

    #[test]
    fn metadata_size_counts_clocks_only() {
        let m = DvvMechanism;
        let mut st: State = Vec::new();
        assert_eq!(Mechanism::<&str>::metadata_size(&m, &st), 0);
        m.write(&mut st, origin(0, 1), &VersionVector::new(), "v");
        assert!(Mechanism::<&str>::metadata_size(&m, &st) > 0);
        let (_, ctx) = Mechanism::<&str>::read(&m, &st);
        assert!(Mechanism::<&str>::context_size(&m, &ctx) > 0);
    }

    #[test]
    fn is_empty_default_impl() {
        let m = DvvMechanism;
        let st: State = Vec::new();
        assert!(Mechanism::<&str>::is_empty(&m, &st));
    }
}
