//! [`DvvMechanism`]: the paper's design — one dotted version vector per
//! sibling, dots assigned at replica servers.

use crate::dotted::Dvv;
use crate::encode::{Decoder, Encode};
use crate::error::DecodeError;
use crate::ids::ReplicaId;
use crate::server::{self, Tagged};
use crate::version_vector::VersionVector;

use super::{Mechanism, WireMechanism, WriteOrigin};

/// The paper's causality mechanism: each sibling carries a
/// [`Dvv`](crate::dotted::Dvv) whose dot is assigned by the coordinating
/// replica; contexts are plain version vectors with **one entry per
/// replica**, regardless of how many clients write.
///
/// # Examples
///
/// ```
/// use dvv::mechanisms::{DvvMechanism, Mechanism, WriteOrigin};
/// use dvv::{ReplicaId, ClientId};
///
/// let m = DvvMechanism::default();
/// let mut state = Default::default();
/// let origin = WriteOrigin::new(ReplicaId(0), ClientId(1));
/// let (_, ctx) = m.read(&state);
/// m.write(&mut state, origin, &ctx, "v1");
/// let (values, _) = m.read(&state);
/// assert_eq!(values, vec!["v1"]);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DvvMechanism;

impl<V: Clone + core::fmt::Debug + Eq + core::hash::Hash + Send + 'static> Mechanism<V>
    for DvvMechanism
{
    type State = Vec<Tagged<ReplicaId, V>>;
    type Context = VersionVector<ReplicaId>;

    fn name(&self) -> &'static str {
        "dvv"
    }

    fn read(&self, state: &Self::State) -> (Vec<V>, Self::Context) {
        let values = state.iter().map(|t| t.value.clone()).collect();
        (values, server::context(state))
    }

    fn write(&self, state: &mut Self::State, origin: WriteOrigin, ctx: &Self::Context, value: V) {
        server::update(state, ctx, origin.server, value);
    }

    fn write_with_floor(
        &self,
        state: &mut Self::State,
        origin: WriteOrigin,
        ctx: &Self::Context,
        value: V,
        floor: u64,
    ) -> Option<u64> {
        let clock = server::update_with_floor(state, ctx, origin.server, value, floor);
        Some(clock.dot().counter())
    }

    fn dot_map(&self, state: &Self::State) -> Vec<((ReplicaId, u64), V)> {
        state
            .iter()
            .map(|t| {
                let d = t.clock.dot();
                ((*d.actor(), d.counter()), t.value.clone())
            })
            .collect()
    }

    fn merge(&self, local: &mut Self::State, remote: &Self::State) {
        server::sync_into(local, remote);
    }

    fn merge_contexts(&self, into: &mut Self::Context, from: &Self::Context) {
        into.merge(from);
    }

    fn metadata_size(&self, state: &Self::State) -> usize {
        state.iter().map(|t| t.clock.encoded_len()).sum()
    }

    fn context_size(&self, ctx: &Self::Context) -> usize {
        ctx.encoded_len()
    }

    fn sibling_count(&self, state: &Self::State) -> usize {
        state.len()
    }
}

impl<V> WireMechanism<V> for DvvMechanism
where
    V: Clone + core::fmt::Debug + Eq + core::hash::Hash + Send + 'static + Encode,
{
    fn encode_state(&self, state: &Self::State, buf: &mut Vec<u8>) {
        // Per sibling: clock then value, in canonical dot order. Both are
        // self-delimiting, so the list needs no count — which is exactly
        // why the output length equals metadata_size + Σ value lengths.
        for t in state {
            t.clock.encode(buf);
            t.value.encode(buf);
        }
    }

    fn decode_state(&self, d: &mut Decoder<'_>) -> Result<Self::State, DecodeError> {
        let mut out: Self::State = Vec::new();
        while d.remaining() > 0 {
            let clock = Dvv::<ReplicaId>::decode(d)?;
            let value = V::decode(d)?;
            if out
                .iter()
                .any(|t: &Tagged<ReplicaId, V>| t.clock.dot() == clock.dot())
            {
                return Err(DecodeError::InvalidValue {
                    reason: "duplicate sibling dot in dvv state",
                });
            }
            out.push(Tagged { clock, value });
        }
        // Canonical dot order is a protocol invariant (AAE fingerprints
        // hash the state); restore it rather than trusting the sender.
        server::canonicalize(&mut out);
        Ok(out)
    }

    fn encode_context(&self, ctx: &Self::Context, buf: &mut Vec<u8>) {
        ctx.encode(buf);
    }

    fn decode_context(&self, d: &mut Decoder<'_>) -> Result<Self::Context, DecodeError> {
        VersionVector::<ReplicaId>::decode(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;

    fn origin(s: u32, c: u64) -> WriteOrigin {
        WriteOrigin::new(ReplicaId(s), ClientId(c))
    }

    type State = Vec<Tagged<ReplicaId, &'static str>>;

    #[test]
    fn read_modify_write_replaces() {
        let m = DvvMechanism;
        let mut st: State = Vec::new();
        let (_, ctx) = m.read(&st);
        m.write(&mut st, origin(0, 1), &ctx, "v1");
        let (vals, ctx) = m.read(&st);
        assert_eq!(vals, vec!["v1"]);
        m.write(&mut st, origin(0, 1), &ctx, "v2");
        let (vals, _) = m.read(&st);
        assert_eq!(vals, vec!["v2"]);
    }

    #[test]
    fn concurrent_clients_both_kept_one_entry_per_server() {
        let m = DvvMechanism;
        let mut st: State = Vec::new();
        let (_, ctx0) = m.read(&st);
        m.write(&mut st, origin(0, 1), &ctx0, "v1");
        let (_, ctx1) = m.read(&st);
        // two clients write with the same context through the same server
        m.write(&mut st, origin(0, 1), &ctx1, "a");
        m.write(&mut st, origin(0, 2), &ctx1, "b");
        assert_eq!(m.sibling_count(&st), 2);
        let (_, ctx) = m.read(&st);
        assert_eq!(ctx.len(), 1, "context has one entry for the single server");
    }

    #[test]
    fn merge_converges_replicas() {
        let m = DvvMechanism;
        let mut a: State = Vec::new();
        let mut b: State = Vec::new();
        m.write(&mut a, origin(0, 1), &VersionVector::new(), "at-a");
        m.write(&mut b, origin(1, 2), &VersionVector::new(), "at-b");
        let a0 = a.clone();
        m.merge(&mut a, &b);
        m.merge(&mut b, &a0);
        assert_eq!(m.sibling_count(&a), 2);
        assert_eq!(m.sibling_count(&b), 2);
        let (mut va, _) = m.read(&a);
        let (mut vb, _) = m.read(&b);
        va.sort();
        vb.sort();
        assert_eq!(va, vb);
    }

    #[test]
    fn metadata_size_counts_clocks_only() {
        let m = DvvMechanism;
        let mut st: State = Vec::new();
        assert_eq!(Mechanism::<&str>::metadata_size(&m, &st), 0);
        m.write(&mut st, origin(0, 1), &VersionVector::new(), "v");
        assert!(Mechanism::<&str>::metadata_size(&m, &st) > 0);
        let (_, ctx) = Mechanism::<&str>::read(&m, &st);
        assert!(Mechanism::<&str>::context_size(&m, &ctx) > 0);
    }

    #[test]
    fn is_empty_default_impl() {
        let m = DvvMechanism;
        let st: State = Vec::new();
        assert!(Mechanism::<&str>::is_empty(&m, &st));
    }

    type WireState = Vec<Tagged<ReplicaId, String>>;

    fn wire_sample() -> WireState {
        let m = DvvMechanism;
        let mut st: WireState = Vec::new();
        let (_, ctx) = m.read(&st);
        m.write(&mut st, origin(0, 1), &ctx, "v1".into());
        let (_, ctx) = m.read(&st);
        // two concurrent writers through two servers → siblings with
        // distinct dots and non-trivial pasts
        m.write(&mut st, origin(0, 1), &ctx, "a".into());
        m.write(&mut st, origin(1, 2), &ctx, "longer-value-b".into());
        st
    }

    #[test]
    fn wire_state_roundtrips_at_exactly_the_modeled_size() {
        let m = DvvMechanism;
        let st = wire_sample();
        let mut buf = Vec::new();
        m.encode_state(&st, &mut buf);
        let modeled = Mechanism::<String>::metadata_size(&m, &st)
            + st.iter().map(|t| t.value.encoded_len()).sum::<usize>();
        assert_eq!(buf.len(), modeled, "real bytes must equal the model");
        let mut d = Decoder::new(&buf);
        let back = m.decode_state(&mut d).unwrap();
        assert_eq!(d.remaining(), 0);
        assert_eq!(back, st);
    }

    #[test]
    fn wire_context_roundtrips_at_exactly_the_modeled_size() {
        let m = DvvMechanism;
        let st = wire_sample();
        let (_, ctx) = Mechanism::<String>::read(&m, &st);
        let mut buf = Vec::new();
        WireMechanism::<String>::encode_context(&m, &ctx, &mut buf);
        assert_eq!(buf.len(), Mechanism::<String>::context_size(&m, &ctx));
        let mut d = Decoder::new(&buf);
        let back = WireMechanism::<String>::decode_context(&m, &mut d).unwrap();
        assert_eq!(back, ctx);
    }

    #[test]
    fn wire_decode_restores_canonical_order_and_rejects_duplicates() {
        let m = DvvMechanism;
        let mut st = wire_sample();
        // encode in reversed order: decode must restore canonical order
        st.reverse();
        let mut buf = Vec::new();
        m.encode_state(&st, &mut buf);
        let mut d = Decoder::new(&buf);
        let back = m.decode_state(&mut d).unwrap();
        crate::server::canonicalize(&mut st);
        assert_eq!(back, st);

        // a repeated sibling dot is malformed, not a panic
        let mut twice = Vec::new();
        m.encode_state(&st, &mut twice);
        m.encode_state(&st, &mut twice);
        let mut d = Decoder::new(&twice);
        assert!(WireMechanism::<String>::decode_state(&m, &mut d).is_err());
    }

    #[test]
    fn wire_decode_never_panics_on_torn_input() {
        let m = DvvMechanism;
        let st = wire_sample();
        let mut buf = Vec::new();
        m.encode_state(&st, &mut buf);
        for cut in 1..buf.len() {
            let mut d = Decoder::new(&buf[..cut]);
            // either a clean error or (never) a short parse; a torn tail
            // must not round-trip to the full state
            if let Ok(short) = m.decode_state(&mut d) {
                assert_ne!(short, st, "torn input parsed as the full state");
            }
        }
    }
}
