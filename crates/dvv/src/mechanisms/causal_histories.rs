//! [`CausalHistoryMechanism`]: exact causality via explicit event sets —
//! the reference the paper's Figure 1a is written in.

use crate::causal_history::CausalHistory;
use crate::dot::Dot;
use crate::encode::Encode;
use crate::ids::ReplicaId;
use crate::order::CausalOrder;

use super::{merge_siblings, Mechanism, WriteOrigin};

/// Tracks causality with explicit [`CausalHistory`] sets: always correct,
/// but metadata grows linearly with the total number of writes — the cost
/// every compressed clock is trying to avoid. Used as the ground truth in
/// tests and as the "ideal but impractical" line in size plots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CausalHistoryMechanism;

impl<V: Clone + core::fmt::Debug + Eq + core::hash::Hash + Send + 'static> Mechanism<V>
    for CausalHistoryMechanism
{
    type State = Vec<(CausalHistory<ReplicaId>, V)>;
    type Context = CausalHistory<ReplicaId>;

    fn name(&self) -> &'static str {
        "causal-histories"
    }

    fn read(&self, state: &Self::State) -> (Vec<V>, Self::Context) {
        let mut ctx = CausalHistory::new();
        for (h, _) in state {
            ctx.union(h);
        }
        (state.iter().map(|(_, v)| v.clone()).collect(), ctx)
    }

    fn write(&self, state: &mut Self::State, origin: WriteOrigin, ctx: &Self::Context, value: V) {
        // fresh dot: one above everything this replica has ever seen of
        // itself, locally or in the client's context.
        let local_max = state
            .iter()
            .flat_map(|(h, _)| h.iter())
            .chain(ctx.iter())
            .filter(|d| d.actor() == &origin.server)
            .map(Dot::counter)
            .max()
            .unwrap_or(0);
        let dot = Dot::new(origin.server, local_max + 1);
        let mut history = ctx.clone();
        history.insert(dot);
        state.retain(|(h, _)| !h.is_subset(ctx));
        state.push((history, value));
    }

    fn merge(&self, local: &mut Self::State, remote: &Self::State) {
        merge_siblings(
            local,
            remote,
            |x, y| x.causal_cmp(y) == CausalOrder::Before,
            |x, y| x == y,
        );
    }

    fn merge_contexts(&self, into: &mut Self::Context, from: &Self::Context) {
        into.union(from);
    }

    fn metadata_size(&self, state: &Self::State) -> usize {
        state.iter().map(|(h, _)| h.encoded_len()).sum()
    }

    fn context_size(&self, ctx: &Self::Context) -> usize {
        ctx.encoded_len()
    }

    fn sibling_count(&self, state: &Self::State) -> usize {
        state.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;

    fn origin(s: u32, c: u64) -> WriteOrigin {
        WriteOrigin::new(ReplicaId(s), ClientId(c))
    }

    type State = Vec<(CausalHistory<ReplicaId>, &'static str)>;

    #[test]
    fn figure_1a_trace() {
        let m = CausalHistoryMechanism;
        let mut a = State::default();

        // c1 writes v1: {A1}
        let (_, ctx0) = m.read(&a);
        m.write(&mut a, origin(0, 1), &ctx0, "v1");
        let (_, ctx1) = m.read(&a);
        assert_eq!(ctx1.len(), 1);

        // c1 writes v2 after reading v1: {A1,A2}
        m.write(&mut a, origin(0, 1), &ctx1, "v2");
        // c2 writes v3 with the same old context: {A1,A3} — concurrent
        m.write(&mut a, origin(0, 2), &ctx1, "v3");
        assert_eq!(m.sibling_count(&a), 2);
        assert_eq!(
            a[0].0.causal_cmp(&a[1].0),
            CausalOrder::Concurrent,
            "{{A1,A2}} || {{A1,A3}}"
        );

        // write that saw both collapses the siblings: {A1,A2,A3,A4}
        let (_, ctx_all) = m.read(&a);
        m.write(&mut a, origin(0, 1), &ctx_all, "v4");
        assert_eq!(m.sibling_count(&a), 1);
        assert_eq!(a[0].0.len(), 4);
    }

    #[test]
    fn merge_discards_dominated_histories() {
        let m = CausalHistoryMechanism;
        let mut a = State::default();
        m.write(&mut a, origin(0, 1), &CausalHistory::new(), "v1");
        let mut b = a.clone();
        let (_, ctx) = m.read(&b);
        m.write(&mut b, origin(0, 2), &ctx, "v2");
        m.merge(&mut a, &b);
        let (vals, _) = m.read(&a);
        assert_eq!(vals, vec!["v2"]);
    }

    #[test]
    fn metadata_grows_with_history_length() {
        let m = CausalHistoryMechanism;
        let mut st = State::default();
        let mut last = 0;
        for _ in 0..10 {
            let (_, ctx) = m.read(&st);
            m.write(&mut st, origin(0, 1), &ctx, "v");
            let size = m.metadata_size(&st);
            assert!(size > last, "causal histories grow monotonically");
            last = size;
        }
    }
}
