//! [`LamportMechanism`]: last-writer-wins on a Lamport clock — the
//! strawman that keeps no concurrency information at all.

use crate::encode::varint_len;
use crate::ids::ClientId;

use super::{Mechanism, WriteOrigin};

/// A single Lamport timestamp per key, ties broken by client id; the store
/// keeps exactly one version and every concurrent write silently loses.
///
/// This is the floor of the design space: minimal metadata (one varint),
/// zero sibling maintenance, and maximal data loss. It anchors the E8
/// anomaly table — every mechanism should beat it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LamportMechanism;

/// Per-key state: the winning version's timestamp, writer, and value.
pub type LamportState<V> = Option<(u64, ClientId, V)>;

impl<V: Clone + core::fmt::Debug + Eq + core::hash::Hash + Send + 'static> Mechanism<V>
    for LamportMechanism
{
    type State = LamportState<V>;
    type Context = u64;

    fn name(&self) -> &'static str {
        "lamport-lww"
    }

    fn read(&self, state: &Self::State) -> (Vec<V>, Self::Context) {
        match state {
            Some((ts, _, v)) => (vec![v.clone()], *ts),
            None => (Vec::new(), 0),
        }
    }

    fn write(&self, state: &mut Self::State, origin: WriteOrigin, ctx: &Self::Context, value: V) {
        let local = state.as_ref().map(|(ts, _, _)| *ts).unwrap_or(0);
        let ts = local.max(*ctx) + 1;
        let candidate = (ts, origin.client, value);
        if state
            .as_ref()
            .is_none_or(|(lts, lc, _)| (ts, origin.client) > (*lts, *lc))
        {
            *state = Some(candidate);
        }
    }

    fn merge(&self, local: &mut Self::State, remote: &Self::State) {
        let remote_wins = match (&*local, remote) {
            (_, None) => false,
            (None, Some(_)) => true,
            (Some((lts, lc, _)), Some((rts, rc, _))) => (rts, rc) > (lts, lc),
        };
        if remote_wins {
            local.clone_from(remote);
        }
    }

    fn merge_contexts(&self, into: &mut Self::Context, from: &Self::Context) {
        *into = (*into).max(*from);
    }

    fn metadata_size(&self, state: &Self::State) -> usize {
        state
            .as_ref()
            .map(|(ts, c, _)| varint_len(*ts) + varint_len(c.0))
            .unwrap_or(0)
    }

    fn context_size(&self, ctx: &Self::Context) -> usize {
        varint_len(*ctx)
    }

    fn sibling_count(&self, state: &Self::State) -> usize {
        usize::from(state.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ReplicaId;

    fn origin(c: u64) -> WriteOrigin {
        WriteOrigin::new(ReplicaId(0), ClientId(c))
    }

    #[test]
    fn single_writer_behaves() {
        let m = LamportMechanism;
        let mut st: LamportState<&str> = None;
        let (_, ctx) = m.read(&st);
        m.write(&mut st, origin(1), &ctx, "v1");
        let (vals, ctx) = m.read(&st);
        assert_eq!(vals, vec!["v1"]);
        m.write(&mut st, origin(1), &ctx, "v2");
        let (vals, _) = m.read(&st);
        assert_eq!(vals, vec!["v2"]);
    }

    #[test]
    fn concurrent_write_silently_loses() {
        let m = LamportMechanism;
        let mut st: LamportState<&str> = None;
        m.write(&mut st, origin(1), &0, "v1");
        // concurrent (same context) write by a higher client id wins:
        m.write(&mut st, origin(2), &0, "v2");
        let (vals, _) = m.read(&st);
        assert_eq!(vals, vec!["v2"]);
        assert_eq!(m.sibling_count(&st), 1, "no sibling is ever kept");
    }

    #[test]
    fn merge_keeps_highest_timestamp() {
        let m = LamportMechanism;
        let mut a: LamportState<&str> = None;
        let mut b: LamportState<&str> = None;
        m.write(&mut a, origin(1), &0, "at-a");
        m.write(&mut b, origin(2), &0, "at-b");
        m.write(&mut b, origin(2), &1, "at-b2"); // ts 2
        let b0 = b;
        m.merge(&mut a, &b);
        m.merge(&mut b, &a.clone());
        assert_eq!(a, b0, "higher timestamp wins deterministically");
        assert_eq!(a, b);
    }

    #[test]
    fn merge_with_empty_sides() {
        let m = LamportMechanism;
        let mut a: LamportState<&str> = None;
        m.merge(&mut a, &None);
        assert!(a.is_none());
        m.merge(&mut a, &Some((1, ClientId(1), "x")));
        assert!(a.is_some());
        let mut b = a;
        m.merge(&mut b, &None);
        assert_eq!(a, b);
    }

    #[test]
    fn metadata_is_tiny() {
        let m = LamportMechanism;
        let mut st: LamportState<&str> = None;
        assert_eq!(m.metadata_size(&st), 0);
        m.write(&mut st, origin(1), &0, "v");
        assert!(m.metadata_size(&st) <= 3);
    }
}
