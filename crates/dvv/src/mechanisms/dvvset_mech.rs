//! [`DvvSetMechanism`]: the compact sibling-set clock as a store mechanism.

use crate::dvvset::DvvSet;
use crate::encode::Encode;
use crate::ids::ReplicaId;
use crate::version_vector::VersionVector;

use super::{Mechanism, WriteOrigin};

/// The DVVSet variant: the whole sibling set shares one clock, so causal
/// metadata costs one version vector total instead of one per sibling.
///
/// Functionally equivalent to [`super::DvvMechanism`] (same values survive
/// the same schedules); the difference is metadata size and per-operation
/// cost — quantified by experiment E9.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DvvSetMechanism;

impl<V: Clone + core::fmt::Debug + Eq + core::hash::Hash + Send + 'static + Encode> Mechanism<V>
    for DvvSetMechanism
{
    type State = DvvSet<ReplicaId, V>;
    type Context = VersionVector<ReplicaId>;

    fn name(&self) -> &'static str {
        "dvvset"
    }

    fn read(&self, state: &Self::State) -> (Vec<V>, Self::Context) {
        (state.values().cloned().collect(), state.context())
    }

    fn write(&self, state: &mut Self::State, origin: WriteOrigin, ctx: &Self::Context, value: V) {
        state.update(ctx, origin.server, value);
    }

    fn merge(&self, local: &mut Self::State, remote: &Self::State) {
        local.sync_into(remote);
    }

    fn merge_contexts(&self, into: &mut Self::Context, from: &Self::Context) {
        into.merge(from);
    }

    fn metadata_size(&self, state: &Self::State) -> usize {
        // Clock metadata: the per-server counters plus one varint position
        // per live value (the dots are positional, values excluded).
        state.context().encoded_len() + crate::encode::varint_len(state.sibling_count() as u64)
    }

    fn context_size(&self, ctx: &Self::Context) -> usize {
        ctx.encoded_len()
    }

    fn sibling_count(&self, state: &Self::State) -> usize {
        state.sibling_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;

    fn origin(s: u32, c: u64) -> WriteOrigin {
        WriteOrigin::new(ReplicaId(s), ClientId(c))
    }

    type State = DvvSet<ReplicaId, String>;

    #[test]
    fn read_modify_write_replaces() {
        let m = DvvSetMechanism;
        let mut st = State::default();
        let (_, ctx) = m.read(&st);
        m.write(&mut st, origin(0, 1), &ctx, "v1".into());
        let (_, ctx) = m.read(&st);
        m.write(&mut st, origin(0, 1), &ctx, "v2".into());
        let (vals, _) = m.read(&st);
        assert_eq!(vals, vec!["v2".to_string()]);
    }

    #[test]
    fn concurrent_writes_become_siblings() {
        let m = DvvSetMechanism;
        let mut st = State::default();
        let (_, ctx) = m.read(&st);
        m.write(&mut st, origin(0, 1), &ctx, "a".into());
        m.write(&mut st, origin(0, 2), &ctx, "b".into());
        assert_eq!(m.sibling_count(&st), 2);
    }

    #[test]
    fn merge_converges() {
        let m = DvvSetMechanism;
        let mut a = State::default();
        let mut b = State::default();
        m.write(&mut a, origin(0, 1), &VersionVector::new(), "x".into());
        m.write(&mut b, origin(1, 2), &VersionVector::new(), "y".into());
        let a0 = a.clone();
        m.merge(&mut a, &b);
        m.merge(&mut b, &a0);
        assert_eq!(a, b, "states converge exactly");
        assert_eq!(m.sibling_count(&a), 2);
    }

    #[test]
    fn metadata_is_flat_in_sibling_count() {
        let m = DvvSetMechanism;
        let mut st = State::default();
        for i in 0..50 {
            m.write(
                &mut st,
                origin(0, i),
                &VersionVector::new(),
                format!("v{i}"),
            );
        }
        assert_eq!(m.sibling_count(&st), 50);
        // One server entry no matter how many concurrent clients:
        assert_eq!(st.actor_count(), 1);
        let meta = m.metadata_size(&st);
        assert!(
            meta < 16,
            "dvvset metadata should be a few bytes, got {meta}"
        );
    }
}
