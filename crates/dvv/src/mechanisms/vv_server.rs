//! [`VvServerMechanism`]: the Coda/Ficus baseline — plain version vectors
//! with one entry per **server**, which cannot represent concurrent client
//! writes through the same server (the paper's Figure 1b).

use crate::encode::Encode;
use crate::ids::ReplicaId;
use crate::version_vector::VersionVector;

use super::{merge_siblings, Mechanism, WriteOrigin};

/// One version-vector entry per replica server.
///
/// Sufficient for detecting concurrency *between servers* (the distributed
/// file-system setting), but when two clients write through the same
/// server, any vector the server can generate for the second write
/// dominates the first (`[2,0] < [3,0]` in Figure 1b) — silently
/// destroying a truly concurrent sibling. This mechanism exists to exhibit
/// exactly that anomaly; the oracle counts its lost updates in E6/E8.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VvServerMechanism;

impl<V: Clone + core::fmt::Debug + Eq + core::hash::Hash + Send + 'static> Mechanism<V>
    for VvServerMechanism
{
    type State = Vec<(VersionVector<ReplicaId>, V)>;
    type Context = VersionVector<ReplicaId>;

    fn name(&self) -> &'static str {
        "vv-server"
    }

    fn read(&self, state: &Self::State) -> (Vec<V>, Self::Context) {
        let mut ctx = VersionVector::new();
        for (vv, _) in state {
            ctx.merge(vv);
        }
        (state.iter().map(|(_, v)| v.clone()).collect(), ctx)
    }

    fn write(&self, state: &mut Self::State, origin: WriteOrigin, ctx: &Self::Context, value: V) {
        // The server can only advance its own entry; the new vector is the
        // context with this server's counter bumped past local knowledge.
        let local_max = state
            .iter()
            .map(|(vv, _)| vv.get(&origin.server))
            .max()
            .unwrap_or(0);
        let mut vv = ctx.clone();
        vv.set(origin.server, local_max.max(ctx.get(&origin.server)) + 1);
        // VV dominance is all the mechanism can check — and here it wrongly
        // covers concurrent writes from other clients (the Figure 1b flaw).
        state.retain(|(old, _)| !vv.strictly_dominates(old));
        state.push((vv, value));
    }

    fn merge(&self, local: &mut Self::State, remote: &Self::State) {
        merge_siblings(local, remote, |x, y| y.strictly_dominates(x), |x, y| x == y);
    }

    fn merge_contexts(&self, into: &mut Self::Context, from: &Self::Context) {
        into.merge(from);
    }

    fn metadata_size(&self, state: &Self::State) -> usize {
        state.iter().map(|(vv, _)| vv.encoded_len()).sum()
    }

    fn context_size(&self, ctx: &Self::Context) -> usize {
        ctx.encoded_len()
    }

    fn sibling_count(&self, state: &Self::State) -> usize {
        state.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;

    fn origin(s: u32, c: u64) -> WriteOrigin {
        WriteOrigin::new(ReplicaId(s), ClientId(c))
    }

    type State = Vec<(VersionVector<ReplicaId>, &'static str)>;

    #[test]
    fn figure_1b_anomaly_second_concurrent_write_destroys_first() {
        let m = VvServerMechanism;
        let mut a = State::default();

        // v1 = [A:1]
        let (_, ctx0) = m.read(&a);
        m.write(&mut a, origin(0, 1), &ctx0, "v1");
        let (_, ctx1) = m.read(&a);

        // client 1 writes v2 (causal): [A:2]
        m.write(&mut a, origin(0, 1), &ctx1, "v2");
        // client 2 writes v3 with the same old context — truly concurrent
        // with v2, but gets [A:3] which *dominates* [A:2]:
        m.write(&mut a, origin(0, 2), &ctx1, "v3");

        let (vals, _) = m.read(&a);
        assert_eq!(
            vals,
            vec!["v3"],
            "the concurrent sibling v2 was silently destroyed — the paper's Figure 1b"
        );
    }

    #[test]
    fn cross_server_concurrency_is_still_detected() {
        // The setting VV-per-server was designed for works fine.
        let m = VvServerMechanism;
        let mut a = State::default();
        let mut b = State::default();
        m.write(&mut a, origin(0, 1), &VersionVector::new(), "at-a");
        m.write(&mut b, origin(1, 2), &VersionVector::new(), "at-b");
        m.merge(&mut a, &b);
        assert_eq!(m.sibling_count(&a), 2);
    }

    #[test]
    fn causal_overwrite_replaces() {
        let m = VvServerMechanism;
        let mut a = State::default();
        m.write(&mut a, origin(0, 1), &VersionVector::new(), "v1");
        let (_, ctx) = m.read(&a);
        m.write(&mut a, origin(0, 1), &ctx, "v2");
        let (vals, _) = m.read(&a);
        assert_eq!(vals, vec!["v2"]);
    }

    #[test]
    fn metadata_bounded_by_server_count() {
        let m = VvServerMechanism;
        let mut a = State::default();
        for c in 0..64 {
            let (_, ctx) = m.read(&a);
            m.write(&mut a, origin(0, c), &ctx, "v");
        }
        let (_, ctx) = m.read(&a);
        assert_eq!(ctx.len(), 1, "one entry per server — bounded but wrong");
    }
}
