//! [`VvClientMechanism`]: the classic Riak baseline — one version-vector
//! entry per **client**, with optional (unsafe) optimistic pruning.

use crate::encode::Encode;
use crate::ids::ClientId;
use crate::version_vector::VersionVector;

use super::{merge_siblings, Mechanism, WriteOrigin};

/// Configuration for optimistic pruning of per-client version vectors.
///
/// Real systems (the paper cites Riak) cap vector length by dropping
/// entries once the vector exceeds a threshold. The paper's point is that
/// this is **unsafe**: safe pruning (Golding) needs global knowledge, and
/// optimistic pruning can lose updates and introduce false concurrency.
/// Experiment E6 counts exactly those anomalies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PruneConfig {
    /// Maximum number of entries to keep per version vector. When a write
    /// pushes a vector past this, entries with the smallest counters are
    /// dropped first (a stand-in for Riak's drop-oldest-by-timestamp).
    pub max_entries: usize,
}

impl PruneConfig {
    /// Creates a pruning policy keeping at most `max_entries` entries.
    ///
    /// # Panics
    ///
    /// Panics if `max_entries` is zero.
    #[must_use]
    pub fn new(max_entries: usize) -> Self {
        assert!(
            max_entries > 0,
            "pruning to zero entries would drop the writer itself"
        );
        PruneConfig { max_entries }
    }
}

/// One version-vector entry per client (classic Riak vclocks).
///
/// Precise (every concurrent pair is detected) but the vectors grow with
/// the number of distinct clients that ever wrote the key — the paper's
/// claim 3. With `prune: Some(_)`, vectors stay bounded but causality
/// breaks (claim 4); with `prune: None` they are correct but unbounded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VvClientMechanism {
    /// Optional optimistic pruning — the unsafe practice under study.
    pub prune: Option<PruneConfig>,
}

impl VvClientMechanism {
    /// The safe, unbounded variant.
    #[must_use]
    pub fn unbounded() -> Self {
        VvClientMechanism { prune: None }
    }

    /// The unsafe variant pruning to `max_entries` vector entries.
    #[must_use]
    pub fn pruned(max_entries: usize) -> Self {
        VvClientMechanism {
            prune: Some(PruneConfig::new(max_entries)),
        }
    }

    fn prune_vv(&self, vv: &mut VersionVector<ClientId>, keep: ClientId) {
        let Some(cfg) = self.prune else { return };
        while vv.len() > cfg.max_entries {
            // Drop the entry with the smallest counter, never the writer's.
            let victim = vv
                .iter()
                .filter(|(a, _)| **a != keep)
                .min_by_key(|&(a, c)| (c, *a))
                .map(|(a, _)| *a);
            match victim {
                Some(a) => {
                    vv.forget(&a);
                }
                None => break,
            }
        }
    }
}

impl<V: Clone + core::fmt::Debug + Eq + core::hash::Hash + Send + 'static> Mechanism<V>
    for VvClientMechanism
{
    type State = Vec<(VersionVector<ClientId>, V)>;
    type Context = VersionVector<ClientId>;

    fn name(&self) -> &'static str {
        if self.prune.is_some() {
            "vv-client-pruned"
        } else {
            "vv-client"
        }
    }

    fn read(&self, state: &Self::State) -> (Vec<V>, Self::Context) {
        let mut ctx = VersionVector::new();
        for (vv, _) in state {
            ctx.merge(vv);
        }
        (state.iter().map(|(_, v)| v.clone()).collect(), ctx)
    }

    fn write(&self, state: &mut Self::State, origin: WriteOrigin, ctx: &Self::Context, value: V) {
        // The new version's vector is the context with the client's own
        // entry advanced past everything this replica has seen from it.
        let local_max = state
            .iter()
            .map(|(vv, _)| vv.get(&origin.client))
            .max()
            .unwrap_or(0);
        let mut vv = ctx.clone();
        vv.set(origin.client, local_max.max(ctx.get(&origin.client)) + 1);
        self.prune_vv(&mut vv, origin.client);
        state.retain(|(old, _)| !vv.strictly_dominates(old));
        state.push((vv, value));
    }

    fn merge(&self, local: &mut Self::State, remote: &Self::State) {
        merge_siblings(local, remote, |x, y| y.strictly_dominates(x), |x, y| x == y);
    }

    fn merge_contexts(&self, into: &mut Self::Context, from: &Self::Context) {
        into.merge(from);
    }

    fn metadata_size(&self, state: &Self::State) -> usize {
        state.iter().map(|(vv, _)| vv.encoded_len()).sum()
    }

    fn context_size(&self, ctx: &Self::Context) -> usize {
        ctx.encoded_len()
    }

    fn sibling_count(&self, state: &Self::State) -> usize {
        state.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ReplicaId;

    fn origin(c: u64) -> WriteOrigin {
        WriteOrigin::new(ReplicaId(0), ClientId(c))
    }

    type State = Vec<(VersionVector<ClientId>, &'static str)>;

    #[test]
    fn unbounded_tracks_concurrency_correctly() {
        let m = VvClientMechanism::unbounded();
        let mut st = State::default();
        let (_, ctx) = m.read(&st);
        m.write(&mut st, origin(1), &ctx, "v1");
        let (_, ctx1) = m.read(&st);
        // two clients write concurrently with the same context
        m.write(&mut st, origin(2), &ctx1, "a");
        m.write(&mut st, origin(3), &ctx1, "b");
        assert_eq!(m.sibling_count(&st), 2, "both concurrent writes kept");
    }

    #[test]
    fn vector_grows_with_client_count() {
        let m = VvClientMechanism::unbounded();
        let mut st = State::default();
        for c in 0..32 {
            let (_, ctx) = m.read(&st);
            m.write(&mut st, origin(c), &ctx, "v");
        }
        let (_, ctx) = m.read(&st);
        assert_eq!(ctx.len(), 32, "one entry per client — the paper's claim 3");
    }

    #[test]
    fn pruned_vectors_stay_bounded_per_version() {
        let m = VvClientMechanism::pruned(4);
        let mut st = State::default();
        for c in 0..32 {
            let (_, ctx) = m.read(&st);
            m.write(&mut st, origin(c), &ctx, "v");
        }
        assert!(
            st.iter().all(|(vv, _)| vv.len() <= 4),
            "every stored vector is pruned to the bound"
        );
        // …but causality is now broken: dominated versions linger as
        // spurious siblings (false concurrency).
        assert!(m.sibling_count(&st) > 1);
    }

    #[test]
    fn pruning_causes_false_concurrency() {
        // Client 1 writes; client 2 reads it and overwrites (causal).
        // With aggressive pruning, client 1's entry is dropped from the new
        // vector, so the old version no longer appears dominated after a
        // replica exchange — a false conflict the paper predicts.
        let m = VvClientMechanism::pruned(1);
        let mut a = State::default();
        let (_, ctx) = m.read(&a);
        m.write(&mut a, origin(1), &ctx, "v1");
        let snapshot_b = a.clone(); // replica B received v1

        let (_, ctx1) = m.read(&a);
        m.write(&mut a, origin(2), &ctx1, "v2"); // causally after v1, but pruned

        // replica exchange: B still has v1; A has pruned v2
        let mut b = snapshot_b;
        m.merge(&mut b, &a);
        assert!(
            m.sibling_count(&b) > 1,
            "pruning made the causal overwrite look concurrent"
        );
    }

    #[test]
    fn unpruned_same_scenario_is_clean() {
        let m = VvClientMechanism::unbounded();
        let mut a = State::default();
        let (_, ctx) = m.read(&a);
        m.write(&mut a, origin(1), &ctx, "v1");
        let snapshot_b = a.clone();
        let (_, ctx1) = m.read(&a);
        m.write(&mut a, origin(2), &ctx1, "v2");
        let mut b = snapshot_b;
        m.merge(&mut b, &a);
        let (vals, _) = m.read(&b);
        assert_eq!(vals, vec!["v2"], "no false concurrency without pruning");
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(
            Mechanism::<&str>::name(&VvClientMechanism::unbounded()),
            "vv-client"
        );
        assert_eq!(
            Mechanism::<&str>::name(&VvClientMechanism::pruned(8)),
            "vv-client-pruned"
        );
    }

    #[test]
    #[should_panic(expected = "zero entries")]
    fn zero_prune_rejected() {
        let _ = PruneConfig::new(0);
    }
}
