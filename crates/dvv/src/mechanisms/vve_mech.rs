//! [`VveMechanism`]: WinFS-style tracking — version identifiers separate
//! from an *exception-capable* causal past ([`Vve`]).
//!
//! WinFS (Malkhi & Terry, 2007) also decouples the version id from the
//! causal past, but records the past as a version vector *with
//! exceptions*, able to express arbitrary non-contiguous histories. The
//! paper's related-work section argues that in multi-version stores —
//! where a client can only replace the versions it has seen — a single
//! dot suffices, making the exception machinery pure overhead. This
//! mechanism exists to measure that: it is exactly as correct as
//! [`super::DvvMechanism`], with strictly more metadata whenever
//! histories are gapped.

use crate::dot::Dot;
use crate::encode::Encode;
use crate::ids::ReplicaId;
use crate::vve::Vve;

use super::{merge_siblings, Mechanism, WriteOrigin};

/// One sibling's clock: its dot plus an exact (exception-capable) past.
pub type VveClock = (Dot<ReplicaId>, Vve<ReplicaId>);

/// Store mechanism with WinFS-style clocks: dot + VVE past.
///
/// Correctness-equivalent to the DVV design (the dot-containment test is
/// the same); the difference is that contexts and pasts are exact event
/// sets, so gaps cost explicit exception entries instead of being
/// over-approximated away.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VveMechanism;

impl<V: Clone + core::fmt::Debug + Eq + core::hash::Hash + Send + 'static> Mechanism<V>
    for VveMechanism
{
    type State = Vec<(VveClock, V)>;
    type Context = Vve<ReplicaId>;

    fn name(&self) -> &'static str {
        "vve"
    }

    fn read(&self, state: &Self::State) -> (Vec<V>, Self::Context) {
        let mut ctx = Vve::new();
        for ((dot, past), _) in state {
            ctx.union(past);
            ctx.add(*dot);
        }
        (state.iter().map(|(_, v)| v.clone()).collect(), ctx)
    }

    fn write(&self, state: &mut Self::State, origin: WriteOrigin, ctx: &Self::Context, value: V) {
        // fresh dot: above everything this replica has seen of itself
        let local_max = state
            .iter()
            .flat_map(|((dot, past), _)| {
                let from_dot = if dot.actor() == &origin.server {
                    dot.counter()
                } else {
                    0
                };
                let from_past = past
                    .iter_dots()
                    .filter(|d| d.actor() == &origin.server)
                    .map(|d| d.counter())
                    .max()
                    .unwrap_or(0);
                [from_dot, from_past]
            })
            .chain(
                ctx.iter_dots()
                    .filter(|d| d.actor() == &origin.server)
                    .map(|d| d.counter()),
            )
            .max()
            .unwrap_or(0);
        let dot = Dot::new(origin.server, local_max + 1);
        // discard siblings whose dot the context covers — same O(1)-per-
        // sibling test as DVV, but on the exact event set
        state.retain(|((old_dot, _), _)| !ctx.contains(old_dot));
        state.push(((dot, ctx.clone()), value));
    }

    fn merge(&self, local: &mut Self::State, remote: &Self::State) {
        merge_siblings(
            local,
            remote,
            |(xd, _), (_, ypast)| ypast.contains(xd),
            |(xd, _), (yd, _)| xd == yd,
        );
    }

    fn merge_contexts(&self, into: &mut Self::Context, from: &Self::Context) {
        into.union(from);
    }

    fn metadata_size(&self, state: &Self::State) -> usize {
        state
            .iter()
            .map(|((dot, past), _)| dot.encoded_len() + past.encoded_len())
            .sum()
    }

    fn context_size(&self, ctx: &Self::Context) -> usize {
        ctx.encoded_len()
    }

    fn sibling_count(&self, state: &Self::State) -> usize {
        state.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;
    use crate::order::CausalOrder;

    fn origin(s: u32, c: u64) -> WriteOrigin {
        WriteOrigin::new(ReplicaId(s), ClientId(c))
    }

    type State = Vec<(VveClock, &'static str)>;

    #[test]
    fn figure_1_trace_matches_dvv() {
        let m = VveMechanism;
        let mut a = State::default();
        m.write(&mut a, origin(0, 1), &Vve::new(), "v1");
        let (_, ctx1) = m.read(&a);
        m.write(&mut a, origin(0, 1), &ctx1, "v2");
        m.write(&mut a, origin(0, 2), &ctx1, "v3");
        assert_eq!(m.sibling_count(&a), 2, "v2 ∥ v3 kept, like the DVV");
        let (_, ctx_all) = m.read(&a);
        m.write(&mut a, origin(0, 3), &ctx_all, "v4");
        assert_eq!(m.sibling_count(&a), 1);
    }

    #[test]
    fn contexts_are_exact_event_sets() {
        let m = VveMechanism;
        let mut a = State::default();
        m.write(&mut a, origin(0, 1), &Vve::new(), "v1"); // (s0,1)
        let (_, ctx1) = m.read(&a);
        m.write(&mut a, origin(0, 1), &ctx1, "v2"); // (s0,2)
        m.write(&mut a, origin(0, 2), &ctx1, "v3"); // (s0,3)

        // a reader that sees only v3 (e.g. at a replica that missed v2):
        let only_v3: State = a.iter().filter(|(_, v)| *v == "v3").cloned().collect();
        let (_, gapped) = m.read(&only_v3);
        // the exact context {s0:1, s0:3} has an exception at 2 — something
        // no plain version vector can express
        assert!(gapped.contains(&Dot::new(ReplicaId(0), 1)));
        assert!(!gapped.contains(&Dot::new(ReplicaId(0), 2)));
        assert!(gapped.contains(&Dot::new(ReplicaId(0), 3)));
        assert_eq!(gapped.exception_count(), 1);
    }

    #[test]
    fn merge_keeps_concurrent_drops_dominated() {
        let m = VveMechanism;
        let mut a = State::default();
        m.write(&mut a, origin(0, 1), &Vve::new(), "v1");
        let mut b = a.clone();
        let (_, ctx) = m.read(&b);
        m.write(&mut b, origin(1, 2), &ctx, "v2");
        m.merge(&mut a, &b);
        let (vals, _) = m.read(&a);
        assert_eq!(vals, vec!["v2"]);

        let mut c = State::default();
        m.write(&mut c, origin(2, 3), &Vve::new(), "v3");
        m.merge(&mut a, &c);
        assert_eq!(m.sibling_count(&a), 2);
    }

    #[test]
    fn counters_never_reused() {
        let m = VveMechanism;
        let mut a = State::default();
        m.write(&mut a, origin(0, 1), &Vve::new(), "v1");
        let (_, ctx) = m.read(&a);
        m.write(&mut a, origin(0, 1), &ctx, "v2"); // (s0,2), discards v1
        let (_, ctx2) = m.read(&a);
        m.write(&mut a, origin(0, 1), &ctx2, "v3");
        let ((dot, _), _) = &a[0];
        assert_eq!(dot, &Dot::new(ReplicaId(0), 3));
    }

    #[test]
    fn metadata_includes_exception_overhead() {
        let m = VveMechanism;
        // gapped context → sibling carries exceptions → bigger than the
        // equivalent DVV whose VV would silently fill the gap
        let mut gapped = Vve::new();
        gapped.add(Dot::new(ReplicaId(0), 1));
        gapped.add(Dot::new(ReplicaId(0), 3));
        let mut st = State::default();
        m.write(&mut st, origin(1, 1), &gapped, "v");
        let with_gap = Mechanism::<&str>::metadata_size(&m, &st);

        let mut compact = Vve::new();
        compact.add(Dot::new(ReplicaId(0), 1));
        compact.add(Dot::new(ReplicaId(0), 2));
        compact.add(Dot::new(ReplicaId(0), 3));
        let mut st2 = State::default();
        m.write(&mut st2, origin(1, 1), &compact, "v");
        let without_gap = Mechanism::<&str>::metadata_size(&m, &st2);
        assert!(with_gap > without_gap, "{with_gap} vs {without_gap}");
    }

    #[test]
    fn dot_comparison_equivalent_to_dvv_semantics() {
        // two writes through the same server with the same context are
        // concurrent: neither dot is in the other's past
        let m = VveMechanism;
        let mut st = State::default();
        m.write(&mut st, origin(0, 1), &Vve::new(), "a");
        m.write(&mut st, origin(0, 2), &Vve::new(), "b");
        let ((d1, p1), _) = &st[0];
        let ((d2, p2), _) = &st[1];
        assert!(!p1.contains(d2) && !p2.contains(d1));
        let _ = CausalOrder::Concurrent;
    }
}
