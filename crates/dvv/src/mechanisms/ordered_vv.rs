//! [`OrderedVv`]: Wang & Amza's version vectors with an O(1) fast
//! dominance path (related work [6] in the paper).
//!
//! Wang & Amza (ICDCS 2009) observed that in optimistic replication the
//! common comparison is between a version and one of its ancestors, and
//! that caching the *most recent event* in each vector makes that check
//! O(1): if `b`'s latest event covers `a`'s latest event, and the versions
//! are on the same lineage, then `a ≤ b`. The cache must be kept in sync
//! on every mutation (the "entries must be kept ordered" cost the paper
//! mentions), and — crucially — the fast path is only *conclusive* when it
//! answers "dominated"; unrelated versions still need the O(n) scan, and
//! the scheme inherits plain VVs' inability to track concurrent client
//! writes through one server.

use core::fmt;

use crate::actor::Actor;
use crate::dot::Dot;
use crate::encode::{Decoder, Encode};
use crate::error::DecodeError;
use crate::ids::ReplicaId;
use crate::order::CausalOrder;
use crate::version_vector::VersionVector;

use super::{merge_siblings, Mechanism, WriteOrigin};

/// A version vector that caches its most recent event for an O(1) fast
/// dominance path.
///
/// # Examples
///
/// ```
/// use dvv::mechanisms::OrderedVv;
///
/// let mut a = OrderedVv::new();
/// a.increment("A");
/// let mut b = a.clone();
/// b.increment("A");
/// // fast path: conclusive here because b's latest covers a entirely
/// assert_eq!(a.fast_dominated_by(&b), Some(true));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OrderedVv<A: Ord> {
    vv: VersionVector<A>,
    /// The most recent event recorded into this vector, if any.
    latest: Option<Dot<A>>,
}

impl<A: Actor> OrderedVv<A> {
    /// Creates an empty clock.
    #[must_use]
    pub fn new() -> Self {
        OrderedVv {
            vv: VersionVector::new(),
            latest: None,
        }
    }

    /// The underlying version vector.
    #[must_use]
    pub fn vv(&self) -> &VersionVector<A> {
        &self.vv
    }

    /// The cached most recent event.
    #[must_use]
    pub fn latest(&self) -> Option<&Dot<A>> {
        self.latest.as_ref()
    }

    /// Advances `actor` and updates the cached latest event.
    pub fn increment(&mut self, actor: A) -> Dot<A> {
        let dot = self.vv.increment(actor);
        self.latest = Some(dot.clone());
        dot
    }

    /// O(1) fast dominance test: `Some(true)` when this version is
    /// certainly dominated by `other` (our latest event is in `other` and
    /// `other`'s latest is *not* in us), `Some(false)` when certainly not
    /// dominated (our latest event is missing from `other`), and `None`
    /// when the fast path is inconclusive and the O(n)
    /// [`OrderedVv::causal_cmp`] must be used.
    #[must_use]
    pub fn fast_dominated_by(&self, other: &Self) -> Option<bool> {
        let mine = self.latest.as_ref()?;
        if !other.vv.contains(mine) {
            return Some(false);
        }
        match &other.latest {
            // Other has seen our newest write and has one we lack: on a
            // write lineage (the Wang & Amza setting) that is dominance.
            Some(theirs) if !self.vv.contains(theirs) => Some(true),
            Some(_) => None, // mutual containment of latests: fall back
            None => None,
        }
    }

    /// Full O(n) comparison (identical to plain version vectors).
    #[must_use]
    pub fn causal_cmp(&self, other: &Self) -> CausalOrder {
        self.vv.causal_cmp(&other.vv)
    }

    /// Dominance test that uses the fast path and falls back to the scan.
    #[must_use]
    pub fn dominated_by(&self, other: &Self) -> bool {
        match self.fast_dominated_by(other) {
            Some(answer) => answer,
            None => other.vv.dominates(&self.vv),
        }
    }

    /// Merges `other` into `self`, keeping the later of the two cached
    /// events (by containment; ties resolved by the canonical dot order).
    pub fn merge(&mut self, other: &Self) {
        self.vv.merge(&other.vv);
        self.latest = match (self.latest.take(), other.latest.clone()) {
            (Some(a), Some(b)) => {
                // prefer the one the merged vector reaches last; canonical
                // tiebreak keeps merge deterministic and commutative.
                if b.counter() > a.counter() || (b.counter() == a.counter() && b > a) {
                    Some(b)
                } else {
                    Some(a)
                }
            }
            (a, b) => a.or(b),
        };
    }
}

impl<A: Actor + fmt::Display> fmt::Display for OrderedVv<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.latest {
            Some(d) => write!(f, "{}@{}", self.vv, d),
            None => write!(f, "{}@-", self.vv),
        }
    }
}

impl<A: Actor + Encode> Encode for OrderedVv<A> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.vv.encode(buf);
        match &self.latest {
            Some(d) => {
                buf.push(1);
                d.encode(buf);
            }
            None => buf.push(0),
        }
    }

    fn encoded_len(&self) -> usize {
        self.vv.encoded_len() + 1 + self.latest.as_ref().map(Encode::encoded_len).unwrap_or(0)
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let vv = VersionVector::<A>::decode(d)?;
        let latest = match d.byte()? {
            0 => None,
            1 => Some(Dot::<A>::decode(d)?),
            _ => {
                return Err(DecodeError::InvalidValue {
                    reason: "unknown ordered-vv latest tag",
                })
            }
        };
        Ok(OrderedVv { vv, latest })
    }
}

/// Store mechanism backed by [`OrderedVv`] with one entry per server —
/// same semantics (and same Figure 1b anomaly) as
/// [`super::VvServerMechanism`], but exercising the fast dominance path so
/// E4 can benchmark it against DVV's O(1) check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OrderedVvMechanism;

impl<V: Clone + core::fmt::Debug + Eq + core::hash::Hash + Send + 'static> Mechanism<V>
    for OrderedVvMechanism
{
    type State = Vec<(OrderedVv<ReplicaId>, V)>;
    type Context = OrderedVv<ReplicaId>;

    fn name(&self) -> &'static str {
        "ordered-vv"
    }

    fn read(&self, state: &Self::State) -> (Vec<V>, Self::Context) {
        let mut ctx = OrderedVv::new();
        for (c, _) in state {
            ctx.merge(c);
        }
        (state.iter().map(|(_, v)| v.clone()).collect(), ctx)
    }

    fn write(&self, state: &mut Self::State, origin: WriteOrigin, ctx: &Self::Context, value: V) {
        let local_max = state
            .iter()
            .map(|(c, _)| c.vv().get(&origin.server))
            .max()
            .unwrap_or(0);
        let mut clock = ctx.clone();
        let bumped = local_max.max(ctx.vv().get(&origin.server)) + 1;
        clock.vv.set(origin.server, bumped);
        clock.latest = Some(Dot::new(origin.server, bumped));
        state.retain(|(old, _)| !(old.dominated_by(&clock) && old != &clock));
        state.push((clock, value));
    }

    fn merge(&self, local: &mut Self::State, remote: &Self::State) {
        merge_siblings(
            local,
            remote,
            |x, y| x.dominated_by(y) && x != y,
            |x, y| x == y,
        );
    }

    fn merge_contexts(&self, into: &mut Self::Context, from: &Self::Context) {
        into.merge(from);
    }

    fn metadata_size(&self, state: &Self::State) -> usize {
        state.iter().map(|(c, _)| c.encoded_len()).sum()
    }

    fn context_size(&self, ctx: &Self::Context) -> usize {
        ctx.encoded_len()
    }

    fn sibling_count(&self, state: &Self::State) -> usize {
        state.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;

    #[test]
    fn fast_path_detects_lineage_dominance() {
        let mut a = OrderedVv::new();
        a.increment("A");
        let mut b = a.clone();
        b.increment("A");
        assert_eq!(a.fast_dominated_by(&b), Some(true));
        assert_eq!(b.fast_dominated_by(&a), Some(false));
        assert!(a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
    }

    #[test]
    fn fast_path_detects_non_dominance_of_unrelated() {
        let mut a = OrderedVv::new();
        a.increment("A");
        let mut b = OrderedVv::new();
        b.increment("B");
        assert_eq!(a.fast_dominated_by(&b), Some(false));
        assert_eq!(a.causal_cmp(&b), CausalOrder::Concurrent);
    }

    #[test]
    fn fast_path_inconclusive_on_equal_clocks() {
        let mut a = OrderedVv::new();
        a.increment("A");
        let b = a.clone();
        assert_eq!(a.fast_dominated_by(&b), None, "falls back to full scan");
        assert!(a.dominated_by(&b), "equal counts as dominated (≤)");
    }

    #[test]
    fn empty_clock_fast_path_is_inconclusive() {
        let empty: OrderedVv<&str> = OrderedVv::new();
        let mut b = OrderedVv::new();
        b.increment("A");
        assert_eq!(empty.fast_dominated_by(&b), None);
        assert!(empty.dominated_by(&b));
    }

    #[test]
    fn merge_is_commutative_including_cache() {
        let mut a = OrderedVv::new();
        a.increment("A");
        a.increment("A");
        let mut b = OrderedVv::new();
        b.increment("B");
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn encode_roundtrip() {
        let mut a: OrderedVv<ReplicaId> = OrderedVv::new();
        a.increment(ReplicaId(0));
        a.increment(ReplicaId(1));
        let bytes = crate::encode::to_bytes(&a);
        assert_eq!(bytes.len(), a.encoded_len());
        let back: OrderedVv<ReplicaId> = crate::encode::from_bytes(&bytes).unwrap();
        assert_eq!(back, a);

        let empty: OrderedVv<ReplicaId> = OrderedVv::new();
        let back: OrderedVv<ReplicaId> =
            crate::encode::from_bytes(&crate::encode::to_bytes(&empty)).unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    fn mechanism_inherits_figure_1b_anomaly() {
        let m = OrderedVvMechanism;
        let mut st: Vec<(OrderedVv<ReplicaId>, &str)> = Vec::new();
        let o1 = WriteOrigin::new(ReplicaId(0), ClientId(1));
        let o2 = WriteOrigin::new(ReplicaId(0), ClientId(2));
        let (_, ctx0) = m.read(&st);
        m.write(&mut st, o1, &ctx0, "v1");
        let (_, ctx1) = m.read(&st);
        m.write(&mut st, o1, &ctx1, "v2");
        m.write(&mut st, o2, &ctx1, "v3");
        let (vals, _) = m.read(&st);
        assert_eq!(vals, vec!["v3"], "same lost update as plain per-server VVs");
    }

    #[test]
    fn mechanism_cross_server_concurrency_detected() {
        let m = OrderedVvMechanism;
        let mut a: Vec<(OrderedVv<ReplicaId>, &str)> = Vec::new();
        let mut b: Vec<(OrderedVv<ReplicaId>, &str)> = Vec::new();
        m.write(
            &mut a,
            WriteOrigin::new(ReplicaId(0), ClientId(1)),
            &OrderedVv::new(),
            "x",
        );
        m.write(
            &mut b,
            WriteOrigin::new(ReplicaId(1), ClientId(2)),
            &OrderedVv::new(),
            "y",
        );
        m.merge(&mut a, &b);
        assert_eq!(m.sibling_count(&a), 2);
    }

    #[test]
    fn display_shows_cache() {
        let mut a = OrderedVv::new();
        a.increment("A");
        assert_eq!(a.to_string(), "[A:1]@(A,1)");
        let e: OrderedVv<&str> = OrderedVv::new();
        assert_eq!(e.to_string(), "[]@-");
    }
}
