//! [`CausalHistory`]: the exact set-of-events model of causality
//! (Schwarz & Mattern), used throughout this repository as ground truth.

use core::fmt;
use std::collections::btree_set::{self, BTreeSet};

use crate::actor::Actor;
use crate::dot::Dot;
use crate::order::CausalOrder;
use crate::version_vector::VersionVector;

/// A causal history: an explicit set of event identifiers ([`Dot`]s).
///
/// Causal histories characterise causality *precisely*: history `Ha`
/// causally precedes `Hb` iff `Ha ⊂ Hb`, and two histories are concurrent
/// iff neither includes the other. They are impractical (they grow with the
/// number of events) but serve as the reference model — every compressed
/// clock in this crate is validated against them, and the paper's Figure 1a
/// is expressed in them.
///
/// Unlike a [`VersionVector`], a causal history can represent arbitrary,
/// non-contiguous sets of events.
///
/// # Examples
///
/// ```
/// use dvv::{CausalHistory, Dot, CausalOrder};
///
/// let a: CausalHistory<&str> = [Dot::new("A", 1)].into_iter().collect();
/// let mut b = a.clone();
/// b.insert(Dot::new("A", 2));
/// assert_eq!(a.causal_cmp(&b), CausalOrder::Before);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CausalHistory<A: Ord> {
    events: BTreeSet<Dot<A>>,
}

impl<A: Actor> CausalHistory<A> {
    /// Creates the empty history.
    #[must_use]
    pub fn new() -> Self {
        CausalHistory {
            events: BTreeSet::new(),
        }
    }

    /// Adds one event. Returns `true` if it was not already present.
    pub fn insert(&mut self, dot: Dot<A>) -> bool {
        self.events.insert(dot)
    }

    /// Whether `dot` is in the history.
    #[must_use]
    pub fn contains(&self, dot: &Dot<A>) -> bool {
        self.events.contains(dot)
    }

    /// Set union with another history.
    pub fn union(&mut self, other: &Self) {
        self.events.extend(other.events.iter().cloned());
    }

    /// Returns the union without mutating either operand.
    #[must_use]
    pub fn united(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.union(other);
        out
    }

    /// Whether `self ⊆ other`.
    #[must_use]
    pub fn is_subset(&self, other: &Self) -> bool {
        self.events.is_subset(&other.events)
    }

    /// Four-way causal comparison by set inclusion — the defining semantics
    /// of causality (`Ha < Hb iff Ha ⊂ Hb`).
    #[must_use]
    pub fn causal_cmp(&self, other: &Self) -> CausalOrder {
        CausalOrder::from_dominance(self.is_subset(other), other.is_subset(self))
    }

    /// Number of events in the history.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the history is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the events in canonical (actor, counter) order.
    pub fn iter(&self) -> Iter<'_, A> {
        Iter {
            inner: self.events.iter(),
        }
    }

    /// Whether the history is *compact*: for every actor, the events form a
    /// contiguous prefix `(a,1) … (a,n)`. Compact histories are exactly the
    /// ones a plain version vector can represent.
    ///
    /// # Examples
    ///
    /// ```
    /// use dvv::{CausalHistory, Dot};
    /// let mut h = CausalHistory::new();
    /// h.insert(Dot::new("A", 1));
    /// h.insert(Dot::new("A", 2));
    /// assert!(h.is_compact());
    /// h.insert(Dot::new("B", 2)); // gap: (B,1) missing
    /// assert!(!h.is_compact());
    /// ```
    #[must_use]
    pub fn is_compact(&self) -> bool {
        let mut expected: Option<(&A, u64)> = None;
        for dot in &self.events {
            match expected {
                Some((actor, next)) if actor == dot.actor() => {
                    if dot.counter() != next {
                        return false;
                    }
                    expected = Some((dot.actor(), next + 1));
                }
                _ => {
                    if dot.counter() != 1 {
                        return false;
                    }
                    expected = Some((dot.actor(), 2));
                }
            }
        }
        true
    }

    /// The best version-vector summary of this history: per-actor maxima.
    ///
    /// Lossless exactly when [`CausalHistory::is_compact`] holds; otherwise
    /// the vector *over*-approximates the history (it includes the gaps).
    #[must_use]
    pub fn to_version_vector(&self) -> VersionVector<A> {
        self.events.iter().cloned().collect()
    }

    /// The history represented by a version vector: all per-actor prefixes.
    ///
    /// This materialises `v[a]` events per actor — linear in the total event
    /// count, which is exactly the cost the compressed clocks avoid.
    #[must_use]
    pub fn from_version_vector(vv: &VersionVector<A>) -> Self {
        let mut h = CausalHistory::new();
        for (actor, counter) in vv.iter() {
            for n in 1..=counter {
                h.insert(Dot::new(actor.clone(), n));
            }
        }
        h
    }

    /// The maximal events of the history: those not followed by a later
    /// event from the same actor. (Used by tests to recover frontier dots.)
    #[must_use]
    pub fn maximal_dots(&self) -> Vec<Dot<A>> {
        let mut out: Vec<Dot<A>> = Vec::new();
        for dot in &self.events {
            match out.last_mut() {
                Some(last) if last.actor() == dot.actor() => *last = dot.clone(),
                _ => out.push(dot.clone()),
            }
        }
        out
    }
}

/// Iterator over the events of a [`CausalHistory`].
#[derive(Debug, Clone)]
pub struct Iter<'a, A> {
    inner: btree_set::Iter<'a, Dot<A>>,
}

impl<'a, A> Iterator for Iter<'a, A> {
    type Item = &'a Dot<A>;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<'a, A> ExactSizeIterator for Iter<'a, A> {}

impl<A: Actor> FromIterator<Dot<A>> for CausalHistory<A> {
    fn from_iter<I: IntoIterator<Item = Dot<A>>>(iter: I) -> Self {
        CausalHistory {
            events: iter.into_iter().collect(),
        }
    }
}

impl<A: Actor> Extend<Dot<A>> for CausalHistory<A> {
    fn extend<I: IntoIterator<Item = Dot<A>>>(&mut self, iter: I) {
        self.events.extend(iter);
    }
}

impl<'a, A: Actor> IntoIterator for &'a CausalHistory<A> {
    type Item = &'a Dot<A>;
    type IntoIter = Iter<'a, A>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<A: Actor + fmt::Display> fmt::Display for CausalHistory<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, dot) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}{}", dot.actor(), dot.counter())?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::CausalOrder::*;

    fn ch(dots: &[(&'static str, u64)]) -> CausalHistory<&'static str> {
        dots.iter().map(|&(a, c)| Dot::new(a, c)).collect()
    }

    #[test]
    fn empty_history() {
        let h: CausalHistory<&str> = CausalHistory::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert!(h.is_compact());
        assert_eq!(h.to_string(), "{}");
    }

    #[test]
    fn insert_and_contains() {
        let mut h = CausalHistory::new();
        assert!(h.insert(Dot::new("A", 1)));
        assert!(!h.insert(Dot::new("A", 1)), "duplicate insert");
        assert!(h.contains(&Dot::new("A", 1)));
        assert!(!h.contains(&Dot::new("A", 2)));
    }

    #[test]
    fn paper_figure_1a_comparisons() {
        // From Figure 1a: {A1,A3} || {A1,A2} and {A1} < {A1,A2}.
        let h1 = ch(&[("A", 1)]);
        let h12 = ch(&[("A", 1), ("A", 2)]);
        let h13 = ch(&[("A", 1), ("A", 3)]);
        assert_eq!(h1.causal_cmp(&h12), Before);
        assert_eq!(h12.causal_cmp(&h1), After);
        assert_eq!(h13.causal_cmp(&h12), Concurrent);
        // Final state of server A: {A1,A2,A3,A4} dominates everything seen.
        let h_final = ch(&[("A", 1), ("A", 2), ("A", 3), ("A", 4)]);
        assert_eq!(h13.causal_cmp(&h_final), Before);
        assert_eq!(h12.causal_cmp(&h_final), Before);
    }

    #[test]
    fn union_and_subset() {
        let a = ch(&[("A", 1), ("A", 3)]);
        let b = ch(&[("A", 1), ("B", 1)]);
        let u = a.united(&b);
        assert!(a.is_subset(&u));
        assert!(b.is_subset(&u));
        assert_eq!(u.len(), 3);
        assert_eq!(u.causal_cmp(&a), After);
    }

    #[test]
    fn compactness_detection() {
        assert!(ch(&[("A", 1), ("A", 2), ("B", 1)]).is_compact());
        assert!(!ch(&[("A", 2)]).is_compact());
        assert!(!ch(&[("A", 1), ("A", 3)]).is_compact());
        assert!(!ch(&[("A", 1), ("B", 2)]).is_compact());
    }

    #[test]
    fn vv_roundtrip_on_compact_histories() {
        let h = ch(&[("A", 1), ("A", 2), ("B", 1)]);
        let vv = h.to_version_vector();
        assert_eq!(vv.get(&"A"), 2);
        assert_eq!(vv.get(&"B"), 1);
        assert_eq!(CausalHistory::from_version_vector(&vv), h);
    }

    #[test]
    fn vv_overapproximates_gapped_histories() {
        // {A1, A3} → [A:3] → {A1, A2, A3}: the gap (A,2) is filled in.
        let h = ch(&[("A", 1), ("A", 3)]);
        let back = CausalHistory::from_version_vector(&h.to_version_vector());
        assert_eq!(back, ch(&[("A", 1), ("A", 2), ("A", 3)]));
        assert_eq!(h.causal_cmp(&back), Before);
    }

    #[test]
    fn maximal_dots_returns_per_actor_frontier() {
        let h = ch(&[("A", 1), ("A", 3), ("B", 2)]);
        assert_eq!(h.maximal_dots(), vec![Dot::new("A", 3), Dot::new("B", 2)]);
    }

    #[test]
    fn display_matches_paper_notation() {
        let h = ch(&[("A", 1), ("A", 2), ("B", 1)]);
        assert_eq!(h.to_string(), "{A1,A2,B1}");
    }

    #[test]
    fn iterator_and_extend() {
        let mut h = ch(&[("A", 1)]);
        h.extend([Dot::new("B", 1), Dot::new("A", 2)]);
        let dots: Vec<_> = h.iter().cloned().collect();
        assert_eq!(
            dots,
            vec![Dot::new("A", 1), Dot::new("A", 2), Dot::new("B", 1)]
        );
        assert_eq!((&h).into_iter().len(), 3);
    }
}
