//! [`VersionVector`]: the classic compressed representation of a causal
//! past (Parker et al., 1983).

use core::fmt;
use std::collections::btree_map::{self, BTreeMap};

use crate::actor::Actor;
use crate::dot::Dot;
use crate::order::CausalOrder;

/// A version vector: for each actor `a`, the entry `v[a] = n` states that
/// every event `(a, 1) … (a, n)` is in the represented causal history.
///
/// Version vectors are *compact* causal histories: they can only describe
/// per-actor prefixes of events. That is exactly what makes them unable to
/// name an individual version without conflating it with its past — the
/// deficiency the paper's dotted version vectors repair.
///
/// This type deliberately does **not** implement [`PartialOrd`]: the causal
/// order is partial, and a derived lexicographic order would be semantically
/// wrong. Use [`VersionVector::causal_cmp`] / [`VersionVector::dominates`].
///
/// Absent entries are implicitly zero, and entries are never stored with a
/// zero counter, so structural equality (`==`) coincides with semantic
/// equality of the represented histories.
///
/// # Examples
///
/// ```
/// use dvv::{VersionVector, Dot, CausalOrder};
///
/// let mut a = VersionVector::new();
/// a.record(Dot::new("A", 1));
/// a.record(Dot::new("A", 2));
///
/// let mut b = a.clone();
/// b.record(Dot::new("B", 1));
///
/// assert_eq!(a.causal_cmp(&b), CausalOrder::Before);
/// assert!(b.contains(&Dot::new("A", 1)));
/// assert!(!b.contains(&Dot::new("B", 2)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VersionVector<A: Ord> {
    entries: BTreeMap<A, u64>,
}

impl<A: Actor> VersionVector<A> {
    /// Creates an empty version vector (the empty causal history).
    #[must_use]
    pub fn new() -> Self {
        VersionVector {
            entries: BTreeMap::new(),
        }
    }

    /// The counter for `actor`; zero if absent.
    ///
    /// # Examples
    ///
    /// ```
    /// use dvv::VersionVector;
    /// let v: VersionVector<&str> = VersionVector::new();
    /// assert_eq!(v.get(&"A"), 0);
    /// ```
    #[must_use]
    pub fn get(&self, actor: &A) -> u64 {
        self.entries.get(actor).copied().unwrap_or(0)
    }

    /// Sets the counter for `actor` to exactly `counter`.
    ///
    /// Setting zero removes the entry, keeping the representation canonical.
    pub fn set(&mut self, actor: A, counter: u64) {
        if counter == 0 {
            self.entries.remove(&actor);
        } else {
            self.entries.insert(actor, counter);
        }
    }

    /// Advances `actor`'s counter by one and returns the dot of the new
    /// event.
    ///
    /// # Examples
    ///
    /// ```
    /// use dvv::{VersionVector, Dot};
    /// let mut v = VersionVector::new();
    /// assert_eq!(v.increment("A"), Dot::new("A", 1));
    /// assert_eq!(v.increment("A"), Dot::new("A", 2));
    /// ```
    pub fn increment(&mut self, actor: A) -> Dot<A> {
        let next = self.get(&actor) + 1;
        self.entries.insert(actor.clone(), next);
        Dot::new(actor, next)
    }

    /// Records `dot` into the summarised history.
    ///
    /// Version vectors can only represent contiguous per-actor prefixes, so
    /// recording `(a, n)` raises `v[a]` to at least `n`; intermediate events
    /// are implied. (Use [`crate::vve::Vve`] when gaps must be represented
    /// exactly.)
    pub fn record(&mut self, dot: Dot<A>) {
        let (actor, counter) = dot.into_parts();
        let e = self.entries.entry(actor).or_insert(0);
        *e = (*e).max(counter);
    }

    /// Whether the event `dot` is included in the represented history.
    ///
    /// This is the O(1) membership test at the heart of the paper: a DVV
    /// comparison is a single `contains` of the left dot in the right past.
    #[must_use]
    pub fn contains(&self, dot: &Dot<A>) -> bool {
        dot.counter() <= self.get(dot.actor())
    }

    /// Pointwise maximum: the join (least upper bound) of the two histories.
    ///
    /// Merging is the lattice join used both when a client combines sibling
    /// contexts and when replicas synchronise.
    ///
    /// # Examples
    ///
    /// ```
    /// use dvv::VersionVector;
    /// let mut a = VersionVector::new();
    /// a.set("A", 2);
    /// let mut b = VersionVector::new();
    /// b.set("B", 1);
    /// a.merge(&b);
    /// assert_eq!(a.get(&"A"), 2);
    /// assert_eq!(a.get(&"B"), 1);
    /// ```
    pub fn merge(&mut self, other: &Self) {
        for (actor, &counter) in &other.entries {
            let e = self.entries.entry(actor.clone()).or_insert(0);
            *e = (*e).max(counter);
        }
    }

    /// Returns the join of two vectors without mutating either.
    #[must_use]
    pub fn merged(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// Whether `self` includes every event of `other` (`other ⊆ self`).
    ///
    /// This is the classic O(n) entry-wise dominance test the paper
    /// contrasts with the O(1) dotted comparison.
    #[must_use]
    pub fn dominates(&self, other: &Self) -> bool {
        other
            .entries
            .iter()
            .all(|(actor, &counter)| self.get(actor) >= counter)
    }

    /// Whether `self` strictly dominates `other` (`other ⊂ self`).
    #[must_use]
    pub fn strictly_dominates(&self, other: &Self) -> bool {
        self.dominates(other) && self != other
    }

    /// Full four-way causal comparison (set inclusion of the represented
    /// histories). O(n) in the number of entries.
    ///
    /// # Examples
    ///
    /// ```
    /// use dvv::{VersionVector, CausalOrder};
    /// let mut a = VersionVector::new();
    /// a.set("A", 1);
    /// let mut b = VersionVector::new();
    /// b.set("B", 1);
    /// assert_eq!(a.causal_cmp(&b), CausalOrder::Concurrent);
    /// ```
    #[must_use]
    pub fn causal_cmp(&self, other: &Self) -> CausalOrder {
        CausalOrder::from_dominance(other.dominates(self), self.dominates(other))
    }

    /// Number of actors with a non-zero entry.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector represents the empty history.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(actor, counter)` entries in actor order.
    pub fn iter(&self) -> Iter<'_, A> {
        Iter {
            inner: self.entries.iter(),
        }
    }

    /// The most recent dot of `actor`, if any event by it is recorded.
    ///
    /// # Examples
    ///
    /// ```
    /// use dvv::{VersionVector, Dot};
    /// let mut v = VersionVector::new();
    /// v.set("A", 2);
    /// assert_eq!(v.max_dot(&"A"), Some(Dot::new("A", 2)));
    /// assert_eq!(v.max_dot(&"B"), None);
    /// ```
    #[must_use]
    pub fn max_dot(&self, actor: &A) -> Option<Dot<A>> {
        let n = self.get(actor);
        (n > 0).then(|| Dot::new(actor.clone(), n))
    }

    /// Total number of events in the represented history (sum of counters).
    #[must_use]
    pub fn event_count(&self) -> u64 {
        self.entries.values().sum()
    }

    /// Removes the entry for `actor`, *forgetting* part of the history.
    ///
    /// This is the primitive behind the **unsafe optimistic pruning** of
    /// per-client version vectors that the paper warns about; it exists so
    /// the pruning baseline and its anomalies can be reproduced. Returns the
    /// removed counter, if any.
    pub fn forget(&mut self, actor: &A) -> Option<u64> {
        self.entries.remove(actor)
    }

    /// **Safe (Golding-style) pruning**: removes every entry that equals
    /// the globally-stable `floor`, returning how many were removed.
    ///
    /// The paper notes that *safe* mechanisms for pruning version vectors
    /// require global knowledge (Golding 1992). This is that operation:
    /// `floor` must be a vector that **every live version in the system
    /// dominates** (e.g. the pointwise minimum over all replicas'
    /// acknowledged state — information only a coordinated protocol can
    /// provide). Under that precondition, entries exactly at the floor
    /// carry no discriminating information — all live vectors share them
    /// — so removing them pointwise from every vector preserves every
    /// pairwise causal comparison among live versions.
    ///
    /// Violating the precondition reintroduces exactly the anomalies of
    /// optimistic pruning; see the property tests.
    ///
    /// # Examples
    ///
    /// ```
    /// use dvv::VersionVector;
    /// let mut x: VersionVector<&str> = [("A", 3u64), ("B", 7)].into_iter().collect();
    /// let floor: VersionVector<&str> = [("A", 3u64), ("B", 5)].into_iter().collect();
    /// assert_eq!(x.prune_stable(&floor), 1); // only A:3 matches the floor
    /// assert_eq!(x.get(&"A"), 0);
    /// assert_eq!(x.get(&"B"), 7);
    /// ```
    pub fn prune_stable(&mut self, floor: &Self) -> usize {
        let before = self.entries.len();
        self.entries.retain(|a, n| floor.get(a) != *n);
        before - self.entries.len()
    }
}

/// Iterator over the `(actor, counter)` entries of a [`VersionVector`].
#[derive(Debug, Clone)]
pub struct Iter<'a, A> {
    inner: btree_map::Iter<'a, A, u64>,
}

impl<'a, A> Iterator for Iter<'a, A> {
    type Item = (&'a A, u64);

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|(a, &c)| (a, c))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<'a, A> ExactSizeIterator for Iter<'a, A> {}

impl<A: Actor> FromIterator<(A, u64)> for VersionVector<A> {
    fn from_iter<I: IntoIterator<Item = (A, u64)>>(iter: I) -> Self {
        let mut v = VersionVector::new();
        for (a, c) in iter {
            if c > v.get(&a) {
                v.set(a, c);
            }
        }
        v
    }
}

impl<A: Actor> FromIterator<Dot<A>> for VersionVector<A> {
    fn from_iter<I: IntoIterator<Item = Dot<A>>>(iter: I) -> Self {
        let mut v = VersionVector::new();
        for d in iter {
            v.record(d);
        }
        v
    }
}

impl<A: Actor> Extend<Dot<A>> for VersionVector<A> {
    fn extend<I: IntoIterator<Item = Dot<A>>>(&mut self, iter: I) {
        for d in iter {
            self.record(d);
        }
    }
}

impl<'a, A: Actor> IntoIterator for &'a VersionVector<A> {
    type Item = (&'a A, u64);
    type IntoIter = Iter<'a, A>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<A: Actor + fmt::Display> fmt::Display for VersionVector<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (a, c)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}:{c}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::CausalOrder::*;

    fn vv(entries: &[(&'static str, u64)]) -> VersionVector<&'static str> {
        entries.iter().copied().collect()
    }

    #[test]
    fn empty_vector_has_zero_everywhere() {
        let v: VersionVector<&str> = VersionVector::new();
        assert_eq!(v.get(&"A"), 0);
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert_eq!(v.event_count(), 0);
    }

    #[test]
    fn set_zero_removes_entry() {
        let mut v = vv(&[("A", 2)]);
        v.set("A", 0);
        assert!(v.is_empty());
        // canonical form: equal to a fresh vector
        assert_eq!(v, VersionVector::new());
    }

    #[test]
    fn increment_returns_fresh_dots() {
        let mut v = VersionVector::new();
        let d1 = v.increment("A");
        let d2 = v.increment("A");
        let d3 = v.increment("B");
        assert_eq!(d1, Dot::new("A", 1));
        assert_eq!(d2, Dot::new("A", 2));
        assert_eq!(d3, Dot::new("B", 1));
        assert_eq!(v.event_count(), 3);
    }

    #[test]
    fn record_is_monotone() {
        let mut v = VersionVector::new();
        v.record(Dot::new("A", 5));
        v.record(Dot::new("A", 2)); // lower dot: no effect
        assert_eq!(v.get(&"A"), 5);
    }

    #[test]
    fn contains_checks_prefix_inclusion() {
        let v = vv(&[("A", 3)]);
        assert!(v.contains(&Dot::new("A", 1)));
        assert!(v.contains(&Dot::new("A", 3)));
        assert!(!v.contains(&Dot::new("A", 4)));
        assert!(!v.contains(&Dot::new("B", 1)));
    }

    #[test]
    fn merge_is_pointwise_max() {
        let mut a = vv(&[("A", 2), ("B", 1)]);
        let b = vv(&[("A", 1), ("C", 4)]);
        a.merge(&b);
        assert_eq!(a, vv(&[("A", 2), ("B", 1), ("C", 4)]));
    }

    #[test]
    fn merge_lattice_laws_smoke() {
        let a = vv(&[("A", 2)]);
        let b = vv(&[("B", 3)]);
        let c = vv(&[("A", 1), ("C", 1)]);
        // commutative
        assert_eq!(a.merged(&b), b.merged(&a));
        // associative
        assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
        // idempotent
        assert_eq!(a.merged(&a), a);
    }

    #[test]
    fn dominance_and_causal_cmp() {
        let small = vv(&[("A", 1)]);
        let big = vv(&[("A", 2), ("B", 1)]);
        let other = vv(&[("C", 1)]);

        assert!(big.dominates(&small));
        assert!(big.strictly_dominates(&small));
        assert!(!small.dominates(&big));
        assert!(big.dominates(&big));
        assert!(!big.strictly_dominates(&big));

        assert_eq!(small.causal_cmp(&big), Before);
        assert_eq!(big.causal_cmp(&small), After);
        assert_eq!(big.causal_cmp(&big), Equal);
        assert_eq!(big.causal_cmp(&other), Concurrent);
    }

    #[test]
    fn paper_figure_1b_dominance_anomaly_setup() {
        // With one entry per server, [2,0] < [3,0] even though the versions
        // were written concurrently — the core deficiency of the baseline.
        let v2 = vv(&[("A", 2)]); // [2,0]
        let v3 = vv(&[("A", 3)]); // [3,0]
        assert_eq!(v2.causal_cmp(&v3), Before);
    }

    #[test]
    fn max_dot_and_forget() {
        let mut v = vv(&[("A", 2), ("B", 1)]);
        assert_eq!(v.max_dot(&"A"), Some(Dot::new("A", 2)));
        assert_eq!(v.forget(&"A"), Some(2));
        assert_eq!(v.max_dot(&"A"), None);
        assert_eq!(v.forget(&"A"), None);
    }

    #[test]
    fn from_dots_iterator() {
        let v: VersionVector<&str> = [Dot::new("A", 1), Dot::new("A", 3), Dot::new("B", 2)]
            .into_iter()
            .collect();
        assert_eq!(v, vv(&[("A", 3), ("B", 2)]));
    }

    #[test]
    fn from_pairs_keeps_max_on_duplicates() {
        let v: VersionVector<&str> = [("A", 1), ("A", 4), ("A", 2)].into_iter().collect();
        assert_eq!(v.get(&"A"), 4);
    }

    #[test]
    fn extend_with_dots() {
        let mut v = VersionVector::new();
        v.extend([Dot::new("A", 2), Dot::new("B", 1)]);
        assert_eq!(v, vv(&[("A", 2), ("B", 1)]));
    }

    #[test]
    fn iter_is_sorted_by_actor_and_exact_size() {
        let v = vv(&[("B", 1), ("A", 2), ("C", 3)]);
        let items: Vec<_> = v.iter().collect();
        assert_eq!(items, vec![(&"A", 2), (&"B", 1), (&"C", 3)]);
        assert_eq!(v.iter().len(), 3);
        let borrowed: Vec<_> = (&v).into_iter().collect();
        assert_eq!(borrowed.len(), 3);
    }

    #[test]
    fn display_lists_entries_in_actor_order() {
        let v = vv(&[("B", 1), ("A", 2)]);
        assert_eq!(v.to_string(), "[A:2, B:1]");
        let e: VersionVector<&str> = VersionVector::new();
        assert_eq!(e.to_string(), "[]");
    }
}
