//! The [`Actor`] trait: identities that can own events.
//!
//! Every clock in this crate is generic over the type used to identify the
//! entity that creates events — replica servers in the DVV design, clients
//! in the per-client version-vector baseline, or plain strings in examples
//! and the paper's figures.

use core::fmt::Debug;
use core::hash::Hash;

/// An identity that can own events in a logical clock.
///
/// This is a blanket-implemented alias for the bounds every clock needs:
/// cloneable, totally ordered (so clocks have a canonical iteration order
/// and `Display` output is deterministic), hashable and debuggable.
///
/// # Examples
///
/// ```
/// fn assert_actor<A: dvv::Actor>() {}
/// assert_actor::<&str>();
/// assert_actor::<String>();
/// assert_actor::<u64>();
/// assert_actor::<dvv::ReplicaId>();
/// ```
pub trait Actor: Clone + Eq + Ord + Hash + Debug {}

impl<T: Clone + Eq + Ord + Hash + Debug> Actor for T {}

#[cfg(test)]
mod tests {
    use super::Actor;

    fn takes_actor<A: Actor>(a: A) -> A {
        a
    }

    #[test]
    fn common_types_are_actors() {
        assert_eq!(takes_actor("A"), "A");
        assert_eq!(takes_actor(7u32), 7u32);
        assert_eq!(takes_actor(String::from("srv")), "srv");
        assert_eq!(takes_actor((1u8, 2u64)), (1, 2));
    }
}
