//! Property tests over the [`Mechanism`] abstraction itself: every
//! implementation — correct or deliberately deficient — must satisfy the
//! replication-lattice laws (merge commutative/associative/idempotent up
//! to sibling order), and the precise ones must collapse a fully-informed
//! write to a single sibling.

use dvv::mechanisms::{
    CausalHistoryMechanism, DvvMechanism, DvvSetMechanism, LamportMechanism, Mechanism,
    OrderedVvMechanism, VvClientMechanism, VvServerMechanism, VveMechanism, WriteOrigin,
};
use dvv::{ClientId, ReplicaId};
use proptest::prelude::*;

/// One scripted step: a write through `server` by `client`, either blind
/// (empty context) or fully informed (context from a fresh read).
#[derive(Clone, Debug)]
struct Step {
    server: u32,
    client: u64,
    informed: bool,
}

fn arb_script() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        (0u32..3, 0u64..4, any::<bool>()).prop_map(|(server, client, informed)| Step {
            server,
            client,
            informed,
        }),
        0..12,
    )
}

/// Builds a state by running the script from empty.
///
/// `server_base` and `value_base` keep dots and values globally unique
/// when several divergent branches of one system are built: dots name
/// events, so two branches may only reuse a server id if they share the
/// exact history behind it — simplest is to give each branch its own
/// coordinators, as distinct physical replicas would be.
fn build_branch<M: Mechanism<u64>>(
    mech: &M,
    script: &[Step],
    server_base: u32,
    value_base: u64,
) -> M::State {
    // clients are processes too: branches must not share them either,
    // or client-based clocks would collide exactly like dots would.
    let client_base = u64::from(server_base) * 100;
    let mut st = M::State::default();
    for (i, s) in script.iter().enumerate() {
        let ctx = if s.informed {
            mech.read(&st).1
        } else {
            M::Context::default()
        };
        mech.write(
            &mut st,
            WriteOrigin::new(
                ReplicaId(server_base + s.server),
                ClientId(client_base + s.client),
            ),
            &ctx,
            value_base + i as u64,
        );
    }
    st
}

/// Single-branch build (scripts that never merge can use any ids).
fn build<M: Mechanism<u64>>(mech: &M, script: &[Step]) -> M::State {
    build_branch(mech, script, 0, 0)
}

/// Canonical view of a state: its sorted surviving values.
fn values<M: Mechanism<u64>>(mech: &M, st: &M::State) -> Vec<u64> {
    let (mut v, _) = mech.read(st);
    v.sort_unstable();
    v
}

fn check_lattice<M: Mechanism<u64>>(
    mech: &M,
    a: &[Step],
    b: &[Step],
    c: &[Step],
) -> Result<(), TestCaseError> {
    // three divergent branches of one system: disjoint coordinator sets
    // (so dots stay globally unique) and disjoint value ranges
    let sa = build_branch(mech, a, 0, 0);
    let sb = build_branch(mech, b, 3, 1000);
    let sc = build_branch(mech, c, 6, 2000);

    // commutativity (up to sibling order)
    let mut ab = sa.clone();
    mech.merge(&mut ab, &sb);
    let mut ba = sb.clone();
    mech.merge(&mut ba, &sa);
    prop_assert_eq!(
        values(mech, &ab),
        values(mech, &ba),
        "{} commutativity",
        mech.name()
    );

    // idempotence
    let mut aa = sa.clone();
    mech.merge(&mut aa, &sa);
    prop_assert_eq!(
        values(mech, &aa),
        values(mech, &sa),
        "{} idempotence",
        mech.name()
    );

    // associativity
    let mut ab_c = ab.clone();
    mech.merge(&mut ab_c, &sc);
    let mut bc = sb.clone();
    mech.merge(&mut bc, &sc);
    let mut a_bc = sa.clone();
    mech.merge(&mut a_bc, &bc);
    prop_assert_eq!(
        values(mech, &ab_c),
        values(mech, &a_bc),
        "{} associativity",
        mech.name()
    );

    // merging never invents values
    let mut all: Vec<u64> = values(mech, &sa);
    all.extend(values(mech, &sb));
    for v in values(mech, &ab) {
        prop_assert!(all.contains(&v), "{} invented value {}", mech.name(), v);
    }
    Ok(())
}

/// Precise mechanisms: a write whose context came from a full read of the
/// state must leave exactly one sibling.
fn check_informed_write_collapses<M: Mechanism<u64>>(
    mech: &M,
    script: &[Step],
) -> Result<(), TestCaseError> {
    let mut st = build(mech, script);
    let ctx = mech.read(&st).1;
    mech.write(
        &mut st,
        WriteOrigin::new(ReplicaId(0), ClientId(99)),
        &ctx,
        u64::MAX,
    );
    prop_assert_eq!(
        mech.sibling_count(&st),
        1,
        "{}: informed write must replace all siblings",
        mech.name()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn lattice_laws_all_mechanisms(a in arb_script(), b in arb_script(), c in arb_script()) {
        check_lattice(&DvvMechanism, &a, &b, &c)?;
        check_lattice(&DvvSetMechanism, &a, &b, &c)?;
        check_lattice(&CausalHistoryMechanism, &a, &b, &c)?;
        check_lattice(&VveMechanism, &a, &b, &c)?;
        check_lattice(&VvClientMechanism::unbounded(), &a, &b, &c)?;
        check_lattice(&VvServerMechanism, &a, &b, &c)?;
        check_lattice(&OrderedVvMechanism, &a, &b, &c)?;
        check_lattice(&LamportMechanism, &a, &b, &c)?;
    }

    #[test]
    fn informed_write_collapses_for_precise_mechanisms(script in arb_script()) {
        check_informed_write_collapses(&DvvMechanism, &script)?;
        check_informed_write_collapses(&DvvSetMechanism, &script)?;
        check_informed_write_collapses(&CausalHistoryMechanism, &script)?;
        check_informed_write_collapses(&VveMechanism, &script)?;
        check_informed_write_collapses(&VvClientMechanism::unbounded(), &script)?;
    }

    /// DVV, DVVSet, CH and VVE must agree on surviving values for every
    /// script (they are all exact causality trackers).
    #[test]
    fn precise_mechanisms_agree(script in arb_script()) {
        let dvv = values(&DvvMechanism, &build(&DvvMechanism, &script));
        let dvvset = values(&DvvSetMechanism, &build(&DvvSetMechanism, &script));
        let ch = values(&CausalHistoryMechanism, &build(&CausalHistoryMechanism, &script));
        let vve = values(&VveMechanism, &build(&VveMechanism, &script));
        prop_assert_eq!(&dvv, &dvvset);
        prop_assert_eq!(&dvv, &ch);
        prop_assert_eq!(&dvv, &vve);
    }

    /// The deficient per-server mechanisms never keep MORE than the
    /// precise ones (their failure mode is losing siblings, not inventing
    /// them).
    #[test]
    fn deficient_mechanisms_only_lose(script in arb_script()) {
        let exact = values(&DvvMechanism, &build(&DvvMechanism, &script)).len();
        let vs = values(&VvServerMechanism, &build(&VvServerMechanism, &script)).len();
        let lww = values(&LamportMechanism, &build(&LamportMechanism, &script)).len();
        prop_assert!(vs <= exact);
        prop_assert!(lww <= exact.max(1));
    }
}
