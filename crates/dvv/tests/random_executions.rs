//! Randomized storage-protocol executions checked against an independent
//! ground truth.
//!
//! This is the heart of the reproduction's validation: we generate random
//! schedules of client reads, client writes and replica synchronisations,
//! run them through the DVV (and DVVSet) server algorithms, and *in
//! parallel* maintain the true causal relation over version identifiers
//! (each write's truth-history is itself plus the closure of everything
//! its client had observed). The compressed clocks must agree with the
//! truth exactly: same pairwise ordering, same surviving siblings — i.e.
//! **no lost updates and no false concurrency, ever**.

use std::collections::{BTreeMap, BTreeSet};

use dvv::server::{self, Tagged};
use dvv::{CausalOrder, DvvSet, ReplicaId, VersionVector};
use proptest::prelude::*;

/// A step in a random execution.
#[derive(Clone, Debug)]
enum Op {
    /// Client `c` reads from server `s` (refreshing its context).
    Read { c: usize, s: usize },
    /// Client `c` writes its next value through server `s`.
    Write { c: usize, s: usize },
    /// Replica `a` and `b` exchange state (bidirectional anti-entropy).
    Sync { a: usize, b: usize },
}

fn arb_ops(servers: usize, clients: usize) -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (0..clients, 0..servers).prop_map(|(c, s)| Op::Read { c, s }),
        (0..clients, 0..servers).prop_map(|(c, s)| Op::Write { c, s }),
        (0..servers, 0..servers).prop_map(|(a, b)| Op::Sync { a, b }),
    ];
    proptest::collection::vec(op, 1..60)
}

/// Version identifier: the value written; unique per write.
type Vid = u64;

/// Ground truth: for each version, the set of versions in its causal past
/// (transitively closed), excluding itself.
#[derive(Default)]
struct Truth {
    past: BTreeMap<Vid, BTreeSet<Vid>>,
}

impl Truth {
    fn record_write(&mut self, vid: Vid, observed: &BTreeSet<Vid>) {
        let mut closure = observed.clone();
        for o in observed {
            if let Some(p) = self.past.get(o) {
                closure.extend(p.iter().copied());
            }
        }
        self.past.insert(vid, closure);
    }

    fn cmp(&self, a: Vid, b: Vid) -> CausalOrder {
        if a == b {
            return CausalOrder::Equal;
        }
        let a_before_b = self.past[&b].contains(&a);
        let b_before_a = self.past[&a].contains(&b);
        assert!(!(a_before_b && b_before_a), "causality cycle in truth");
        CausalOrder::from_dominance(a_before_b, b_before_a)
    }

    /// The truth-maximal subset of `present`: versions not dominated by
    /// another version in the set.
    fn maximal(&self, present: &BTreeSet<Vid>) -> BTreeSet<Vid> {
        present
            .iter()
            .copied()
            .filter(|v| !present.iter().any(|w| w != v && self.past[w].contains(v)))
            .collect()
    }
}

struct DvvWorld {
    servers: Vec<Vec<Tagged<ReplicaId, Vid>>>,
    /// per-client (clock context, truth context)
    clients: Vec<(VersionVector<ReplicaId>, BTreeSet<Vid>)>,
    truth: Truth,
    /// every version a server has ever *hosted* (written there or synced in)
    hosted: Vec<BTreeSet<Vid>>,
    next_vid: Vid,
    all_versions: Vec<(Vid, dvv::Dvv<ReplicaId>)>,
}

impl DvvWorld {
    fn new(servers: usize, clients: usize) -> Self {
        DvvWorld {
            servers: vec![Vec::new(); servers],
            clients: vec![(VersionVector::new(), BTreeSet::new()); clients],
            truth: Truth::default(),
            hosted: vec![BTreeSet::new(); servers],
            next_vid: 0,
            all_versions: Vec::new(),
        }
    }

    fn apply(&mut self, op: &Op) {
        match *op {
            Op::Read { c, s } => {
                let ctx = server::context(&self.servers[s]);
                let observed: BTreeSet<Vid> = self.servers[s].iter().map(|t| t.value).collect();
                let client = &mut self.clients[c];
                client.0.merge(&ctx);
                // observing a version observes its whole truth past
                for v in &observed {
                    client.1.insert(*v);
                    client.1.extend(self.truth.past[v].iter().copied());
                }
            }
            Op::Write { c, s } => {
                let vid = self.next_vid;
                self.next_vid += 1;
                let (ctx, observed) = self.clients[c].clone();
                let clock = server::update(&mut self.servers[s], &ctx, ReplicaId(s as u32), vid);
                self.truth.record_write(vid, &observed);
                self.hosted[s].insert(vid);
                self.all_versions.push((vid, clock));
                // The client receives the resulting state back (Riak's
                // `return_body` semantics): its context must be refreshed
                // from the *whole* sibling set, never from the lone new
                // clock — a single Dvv's join_vv over-claims gapped
                // histories and would break causality (see DESIGN.md).
                self.apply(&Op::Read { c, s });
            }
            Op::Sync { a, b } => {
                if a == b {
                    return;
                }
                let merged = server::sync(&self.servers[a], &self.servers[b]);
                self.servers[a] = merged.clone();
                self.servers[b] = merged;
                let union: BTreeSet<Vid> = self.hosted[a].union(&self.hosted[b]).copied().collect();
                self.hosted[a] = union.clone();
                self.hosted[b] = union;
            }
        }
    }

    fn check_invariants(&self) -> Result<(), TestCaseError> {
        // 1. pairwise clock comparison ≡ truth comparison
        for (i, (vid_a, dvv_a)) in self.all_versions.iter().enumerate() {
            for (vid_b, dvv_b) in &self.all_versions[i + 1..] {
                let fast = dvv_a.causal_cmp(dvv_b);
                let truth = self.truth.cmp(*vid_a, *vid_b);
                prop_assert_eq!(
                    fast,
                    truth,
                    "clock said {} but truth is {} for v{} vs v{}",
                    fast,
                    truth,
                    vid_a,
                    vid_b
                );
            }
        }
        // 2. per server: surviving siblings are exactly the truth-maximal
        //    hosted versions (no lost updates, no false concurrency)
        for (s, siblings) in self.servers.iter().enumerate() {
            let present: BTreeSet<Vid> = siblings.iter().map(|t| t.value).collect();
            let expected = self.truth.maximal(&self.hosted[s]);
            prop_assert_eq!(
                &present,
                &expected,
                "server {} siblings {:?} != truth-maximal {:?}",
                s,
                present,
                expected
            );
        }
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// DVV server algorithms never lose updates and never present false
    /// concurrency, on arbitrary schedules over 3 servers and 4 clients.
    #[test]
    fn dvv_agrees_with_ground_truth(ops in arb_ops(3, 4)) {
        let mut world = DvvWorld::new(3, 4);
        for op in &ops {
            world.apply(op);
        }
        world.check_invariants()?;
    }

    /// The same schedules with read-your-writes sessions and a final full
    /// sync converge all replicas to identical sibling sets.
    #[test]
    fn dvv_replicas_converge_after_full_sync(ops in arb_ops(3, 4)) {
        let mut world = DvvWorld::new(3, 4);
        for op in &ops {
            world.apply(op);
        }
        // full pairwise exchange
        for a in 0..3 {
            for b in (a + 1)..3 {
                world.apply(&Op::Sync { a, b });
            }
        }
        world.apply(&Op::Sync { a: 0, b: 1 });
        let sets: Vec<BTreeSet<Vid>> = world
            .servers
            .iter()
            .map(|s| s.iter().map(|t| t.value).collect())
            .collect();
        prop_assert_eq!(&sets[0], &sets[1]);
        prop_assert_eq!(&sets[1], &sets[2]);
        world.check_invariants()?;
    }

    /// DVVSet produces exactly the same surviving values as the
    /// list-of-DVVs algorithms on every schedule (the E9 ablation's
    /// correctness side).
    #[test]
    fn dvvset_equivalent_to_tagged_dvvs(ops in arb_ops(3, 4)) {
        let mut tagged: Vec<Vec<Tagged<ReplicaId, Vid>>> = vec![Vec::new(); 3];
        let mut sets: Vec<DvvSet<ReplicaId, Vid>> = vec![DvvSet::new(); 3];
        let mut ctxs: Vec<VersionVector<ReplicaId>> =
            vec![VersionVector::new(); 4];
        let mut next = 0u64;
        for op in &ops {
            match *op {
                Op::Read { c, s } => {
                    ctxs[c].merge(&server::context(&tagged[s]));
                    // contexts must be identical between representations
                    let set_ctx = sets[s].context();
                    prop_assert_eq!(&server::context(&tagged[s]), &set_ctx);
                }
                Op::Write { c, s } => {
                    let vid = next;
                    next += 1;
                    server::update(&mut tagged[s], &ctxs[c], ReplicaId(s as u32), vid);
                    sets[s].update(&ctxs[c], ReplicaId(s as u32), vid);
                }
                Op::Sync { a, b } => {
                    if a == b { continue; }
                    let merged = server::sync(&tagged[a], &tagged[b]);
                    tagged[a] = merged.clone();
                    tagged[b] = merged;
                    let m = sets[a].sync(&sets[b]);
                    sets[a] = m.clone();
                    sets[b] = m;
                }
            }
            for s in 0..3 {
                let from_tagged: BTreeSet<Vid> = tagged[s].iter().map(|t| t.value).collect();
                let from_set: BTreeSet<Vid> = sets[s].values().copied().collect();
                prop_assert_eq!(
                    &from_tagged, &from_set,
                    "representations diverged at server {} after {:?}",
                    s, op
                );
            }
        }
    }

    /// `sync` is commutative, associative and idempotent over states
    /// produced by real executions.
    #[test]
    fn sync_semilattice_on_real_states(ops in arb_ops(3, 4)) {
        let mut world = DvvWorld::new(3, 4);
        for op in &ops {
            world.apply(op);
        }
        let s0 = &world.servers[0];
        let s1 = &world.servers[1];
        let s2 = &world.servers[2];
        let key = |set: &Vec<Tagged<ReplicaId, Vid>>| -> BTreeSet<Vid> {
            set.iter().map(|t| t.value).collect()
        };
        prop_assert_eq!(key(&server::sync(s0, s1)), key(&server::sync(s1, s0)));
        prop_assert_eq!(key(&server::sync(s0, s0)), key(s0));
        let left = server::sync(&server::sync(s0, s1), s2);
        let right = server::sync(s0, &server::sync(s1, s2));
        prop_assert_eq!(key(&left), key(&right));
    }
}
