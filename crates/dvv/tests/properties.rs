//! Property-based tests for the clock types: lattice laws, agreement with
//! the causal-history reference model, and encoding round-trips.

use dvv::encode::{from_bytes, to_bytes};
use dvv::mechanisms::OrderedVv;
use dvv::vve::Vve;
use dvv::{CausalHistory, CausalOrder, Dot, Dvv, ReplicaId, VersionVector};
use proptest::collection::{btree_set, vec};
use proptest::prelude::*;

const ACTORS: u32 = 5;

fn arb_vv() -> impl Strategy<Value = VersionVector<ReplicaId>> {
    vec((0..ACTORS, 0u64..20), 0..8).prop_map(|pairs| {
        pairs
            .into_iter()
            .filter(|(_, c)| *c > 0)
            .map(|(a, c)| (ReplicaId(a), c))
            .collect()
    })
}

fn arb_dot() -> impl Strategy<Value = Dot<ReplicaId>> {
    (0..ACTORS, 1u64..24).prop_map(|(a, c)| Dot::new(ReplicaId(a), c))
}

fn arb_history() -> impl Strategy<Value = CausalHistory<ReplicaId>> {
    btree_set(arb_dot(), 0..16).prop_map(|dots| dots.into_iter().collect())
}

fn arb_dvv() -> impl Strategy<Value = Dvv<ReplicaId>> {
    (arb_dot(), arb_vv()).prop_map(|(dot, mut vv)| {
        // make the past consistent: it must not contain the dot
        if vv.contains(&dot) {
            vv.set(*dot.actor(), dot.counter() - 1);
        }
        Dvv::new(dot, vv)
    })
}

proptest! {
    // ---------- version vector lattice laws ----------

    #[test]
    fn vv_merge_commutative(a in arb_vv(), b in arb_vv()) {
        prop_assert_eq!(a.merged(&b), b.merged(&a));
    }

    #[test]
    fn vv_merge_associative(a in arb_vv(), b in arb_vv(), c in arb_vv()) {
        prop_assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
    }

    #[test]
    fn vv_merge_idempotent(a in arb_vv()) {
        prop_assert_eq!(a.merged(&a), a);
    }

    #[test]
    fn vv_merge_is_least_upper_bound(a in arb_vv(), b in arb_vv()) {
        let m = a.merged(&b);
        prop_assert!(m.dominates(&a));
        prop_assert!(m.dominates(&b));
        // least: every entry of m comes from a or b
        for (actor, c) in m.iter() {
            prop_assert!(a.get(actor) == c || b.get(actor) == c);
        }
    }

    #[test]
    fn vv_causal_cmp_antisymmetric(a in arb_vv(), b in arb_vv()) {
        prop_assert_eq!(a.causal_cmp(&b), b.causal_cmp(&a).reverse());
        if a == b {
            prop_assert_eq!(a.causal_cmp(&b), CausalOrder::Equal);
        }
    }

    #[test]
    fn vv_matches_history_reference(a in arb_vv(), b in arb_vv()) {
        let ha = CausalHistory::from_version_vector(&a);
        let hb = CausalHistory::from_version_vector(&b);
        prop_assert_eq!(a.causal_cmp(&b), ha.causal_cmp(&hb));
    }

    #[test]
    fn vv_contains_matches_history(a in arb_vv(), d in arb_dot()) {
        let h = CausalHistory::from_version_vector(&a);
        prop_assert_eq!(a.contains(&d), h.contains(&d));
    }

    // ---------- causal history model ----------

    #[test]
    fn history_union_is_join(a in arb_history(), b in arb_history()) {
        let u = a.united(&b);
        prop_assert!(a.is_subset(&u));
        prop_assert!(b.is_subset(&u));
        prop_assert_eq!(u.len() + a.iter().filter(|d| b.contains(d)).count(),
                        a.len() + b.len());
        prop_assert_eq!(a.united(&b), b.united(&a));
    }

    #[test]
    fn history_vv_roundtrip_iff_compact(h in arb_history()) {
        let back = CausalHistory::from_version_vector(&h.to_version_vector());
        prop_assert!(h.is_subset(&back), "the vector over-approximates");
        prop_assert_eq!(back == h, h.is_compact());
    }

    // ---------- dotted version vectors ----------

    #[test]
    fn dvv_cmp_matches_history_reference(a in arb_dvv(), b in arb_dvv()) {
        // The O(1) comparison must agree with explicit set inclusion
        // whenever the dot-membership criterion is decisive — which, for
        // distinct dots, is the paper's theorem. Equal dots are the same
        // version by uniqueness; here two random clocks can share a dot
        // with different pasts, which real executions never produce, so
        // restrict to the meaningful case.
        prop_assume!(a.dot() != b.dot());
        // Independently-generated clocks can form causality cycles (each
        // past containing the other's dot), which no execution produces;
        // the theorem does not cover them.
        prop_assume!(!(b.past().contains(a.dot()) && a.past().contains(b.dot())));
        let fast = a.causal_cmp(&b);
        let ha = a.to_causal_history();
        let hb = b.to_causal_history();
        // fast Before implies the dot is genuinely in b's past
        match fast {
            CausalOrder::Before => prop_assert!(hb.contains(a.dot())),
            CausalOrder::After => prop_assert!(ha.contains(b.dot())),
            CausalOrder::Concurrent => {
                prop_assert!(!hb.contains(a.dot()));
                prop_assert!(!ha.contains(b.dot()));
            }
            CausalOrder::Equal => prop_assert!(false, "distinct dots can't be equal"),
        }
    }

    #[test]
    fn dvv_join_vv_dominates_past_and_contains_dot(d in arb_dvv()) {
        let j = d.join_vv();
        prop_assert!(j.dominates(d.past()));
        prop_assert!(j.contains(d.dot()));
    }

    #[test]
    fn dvv_history_size_is_past_plus_one(d in arb_dvv()) {
        let h = d.to_causal_history();
        prop_assert_eq!(h.len() as u64, d.past().event_count() + 1);
    }

    // ---------- VVE vs reference ----------

    #[test]
    fn vve_union_matches_reference(a in arb_history(), b in arb_history()) {
        let va: Vve<ReplicaId> = a.iter().cloned().collect();
        let vb: Vve<ReplicaId> = b.iter().cloned().collect();
        let u = va.united(&vb);
        let expected = a.united(&b);
        let got: CausalHistory<ReplicaId> = u.iter_dots().collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn vve_cmp_matches_reference(a in arb_history(), b in arb_history()) {
        let va: Vve<ReplicaId> = a.iter().cloned().collect();
        let vb: Vve<ReplicaId> = b.iter().cloned().collect();
        prop_assert_eq!(va.causal_cmp(&vb), a.causal_cmp(&b));
    }

    #[test]
    fn vve_contains_matches_reference(a in arb_history(), d in arb_dot()) {
        let va: Vve<ReplicaId> = a.iter().cloned().collect();
        prop_assert_eq!(va.contains(&d), a.contains(&d));
    }

    // ---------- ordered VV fast path soundness ----------

    #[test]
    fn ordered_vv_fast_path_never_contradicts_scan(
        ops_a in vec(0..ACTORS, 1..12),
        extra_b in vec(0..ACTORS, 0..6),
        fork in any::<bool>(),
    ) {
        // Build b either as a descendant of a (lineage) or independent.
        let mut a = OrderedVv::new();
        for s in &ops_a {
            a.increment(ReplicaId(*s));
        }
        let mut b = if fork { OrderedVv::new() } else { a.clone() };
        for s in &extra_b {
            b.increment(ReplicaId(*s));
        }
        if let Some(fast) = a.fast_dominated_by(&b) {
            if !fork {
                // on a lineage, the fast path must agree with the scan
                prop_assert_eq!(fast, b.vv().dominates(a.vv()));
            } else if fast {
                // a "dominated" verdict must never be wrong about the dot
                prop_assert!(b.vv().contains(a.latest().unwrap()));
            }
        }
    }

    // ---------- safe (Golding-style) pruning ----------

    /// Pruning entries at a shared stable floor preserves every pairwise
    /// comparison among vectors that dominate the floor — the global-
    /// knowledge condition under which pruning is safe.
    #[test]
    fn safe_pruning_preserves_comparisons(
        floor in arb_vv(),
        extra_a in arb_vv(),
        extra_b in arb_vv(),
    ) {
        // construct two live vectors that both dominate the floor
        let a = floor.merged(&extra_a);
        let b = floor.merged(&extra_b);
        let before = a.causal_cmp(&b);
        let mut pa = a.clone();
        let mut pb = b.clone();
        pa.prune_stable(&floor);
        pb.prune_stable(&floor);
        prop_assert_eq!(pa.causal_cmp(&pb), before,
            "pruning {} under floor {} changed {} vs {}", a, floor, a, b);
    }

    /// Without the global-knowledge precondition (one vector does NOT
    /// dominate the floor), pruning can corrupt comparisons — the unsafe
    /// optimistic variant the paper warns about. We assert the *weaker*
    /// safe property fails on a concrete witness, not on all inputs.
    #[test]
    fn unsafe_pruning_witness_exists(_dummy in 0u8..1) {
        let floor: VersionVector<ReplicaId> = [(ReplicaId(0), 4u64)].into_iter().collect();
        // a dominates the floor; stale does NOT (precondition violated)
        let a: VersionVector<ReplicaId> = [(ReplicaId(0), 4u64), (ReplicaId(1), 1)].into_iter().collect();
        let stale: VersionVector<ReplicaId> = [(ReplicaId(0), 2u64)].into_iter().collect();
        let before = stale.causal_cmp(&a);
        let mut pa = a.clone();
        pa.prune_stable(&floor);
        let after = stale.causal_cmp(&pa);
        prop_assert_ne!(before, after, "the witness must demonstrate corruption");
    }

    // ---------- encoding round-trips ----------

    #[test]
    fn encode_roundtrip_vv(a in arb_vv()) {
        let bytes = to_bytes(&a);
        prop_assert_eq!(bytes.len(), dvv::encode::Encode::encoded_len(&a));
        let back: VersionVector<ReplicaId> = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn encode_roundtrip_dvv(d in arb_dvv()) {
        let back: Dvv<ReplicaId> = from_bytes(&to_bytes(&d)).unwrap();
        prop_assert_eq!(back, d);
    }

    #[test]
    fn encode_roundtrip_history(h in arb_history()) {
        let back: CausalHistory<ReplicaId> = from_bytes(&to_bytes(&h)).unwrap();
        prop_assert_eq!(back, h);
    }

    #[test]
    fn encode_roundtrip_vve(h in arb_history()) {
        let v: Vve<ReplicaId> = h.iter().cloned().collect();
        let back: Vve<ReplicaId> = from_bytes(&to_bytes(&v)).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in vec(any::<u8>(), 0..64)) {
        // decoding arbitrary bytes may fail but must not panic
        let _ = from_bytes::<VersionVector<ReplicaId>>(&bytes);
        let _ = from_bytes::<Dvv<ReplicaId>>(&bytes);
        let _ = from_bytes::<CausalHistory<ReplicaId>>(&bytes);
        let _ = from_bytes::<Vve<ReplicaId>>(&bytes);
        let _ = from_bytes::<dvv::DvvSet<ReplicaId, Vec<u8>>>(&bytes);
    }
}
