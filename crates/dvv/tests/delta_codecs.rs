//! Property coverage for the delta codecs in `dvv::encode`: sorted-id
//! gap deltas, bit-packed `(id, value)` runs, the delta version-vector
//! form and the shared-prefix leaf-set form. Mirrors
//! `encode_roundtrip.rs`: decode∘encode = id, the `*_len` functions
//! match actual output, and truncation always errors instead of
//! panicking — plus the bit-pack boundary widths that unit tests can
//! only spot-check.

use std::collections::BTreeMap;

use dvv::encode::{
    bit_width, bitpacked_len, get_id_value_pairs, get_leaf_set, get_sorted_ids, get_vv_delta,
    id_value_pairs_len, leaf_set_len, put_id_value_pairs, put_leaf_set, put_sorted_ids,
    put_vv_delta, sorted_ids_len, vv_delta_len, BitReader, BitWriter, Decoder,
};
use dvv::{ReplicaId, VersionVector};
use proptest::collection::{btree_map, vec};
use proptest::prelude::*;

fn arb_sorted_ids() -> impl Strategy<Value = Vec<u64>> {
    vec(0u64..1 << 48, 0..40).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

fn arb_pairs() -> impl Strategy<Value = Vec<(u64, u64)>> {
    btree_map(0u64..1 << 32, any::<u64>(), 0..30)
        .prop_map(|m: BTreeMap<u64, u64>| m.into_iter().collect())
}

fn arb_leaves() -> impl Strategy<Value = Vec<(Vec<u8>, u64)>> {
    btree_map(vec(any::<u8>(), 0..12), any::<u64>(), 0..30)
        .prop_map(|m: BTreeMap<Vec<u8>, u64>| m.into_iter().collect())
}

fn arb_vv() -> impl Strategy<Value = VersionVector<ReplicaId>> {
    btree_map(0u32..64, 1u64..1 << 40, 0..16)
        .prop_map(|m: BTreeMap<u32, u64>| m.into_iter().map(|(a, c)| (ReplicaId(a), c)).collect())
}

proptest! {
    #[test]
    fn bitpack_roundtrips_any_width(values in vec(any::<u64>(), 1..50), width in 0u64..=64) {
        let width = width as u32;
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let values: Vec<u64> = values.into_iter().map(|v| v & mask).collect();
        let mut buf = Vec::new();
        let mut w = BitWriter::new(&mut buf);
        for &v in &values {
            w.write(v, width);
        }
        w.finish();
        prop_assert_eq!(buf.len(), bitpacked_len(values.len(), width));
        let mut d = Decoder::new(&buf);
        let mut r = BitReader::new(&mut d);
        for &v in &values {
            prop_assert_eq!(r.read(width).unwrap(), v);
        }
    }

    #[test]
    fn bit_width_is_tight(v in any::<u64>()) {
        let w = bit_width(v);
        if w < 64 {
            prop_assert!(v < 1 << w);
        }
        if w > 0 {
            prop_assert!(v >= 1 << (w - 1));
        }
    }

    #[test]
    fn roundtrip_sorted_ids(ids in arb_sorted_ids()) {
        let mut buf = Vec::new();
        put_sorted_ids(&mut buf, &ids);
        prop_assert_eq!(buf.len(), sorted_ids_len(&ids));
        let mut d = Decoder::new(&buf);
        prop_assert_eq!(get_sorted_ids(&mut d).unwrap(), ids);
        prop_assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn roundtrip_id_value_pairs(pairs in arb_pairs()) {
        let mut buf = Vec::new();
        put_id_value_pairs(&mut buf, &pairs);
        prop_assert_eq!(buf.len(), id_value_pairs_len(&pairs));
        let mut d = Decoder::new(&buf);
        prop_assert_eq!(get_id_value_pairs(&mut d).unwrap(), pairs);
        prop_assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn roundtrip_vv_delta(vv in arb_vv()) {
        let mut buf = Vec::new();
        put_vv_delta(&mut buf, &vv);
        prop_assert_eq!(buf.len(), vv_delta_len(&vv));
        let mut d = Decoder::new(&buf);
        prop_assert_eq!(get_vv_delta(&mut d).unwrap(), vv);
        prop_assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn roundtrip_leaf_set(leaves in arb_leaves()) {
        let mut buf = Vec::new();
        put_leaf_set(&mut buf, &leaves);
        prop_assert_eq!(buf.len(), leaf_set_len(&leaves));
        let mut d = Decoder::new(&buf);
        prop_assert_eq!(get_leaf_set(&mut d).unwrap(), leaves);
        prop_assert_eq!(d.remaining(), 0);
    }

    /// Every strict prefix of a valid encoding errors cleanly for each
    /// codec — no panic, no fabricated value that consumes zero input.
    #[test]
    fn truncation_always_errors(
        pairs in arb_pairs(),
        leaves in arb_leaves(),
        vv in arb_vv(),
        cut in 0usize..4096,
    ) {
        let mut buf = Vec::new();
        put_id_value_pairs(&mut buf, &pairs);
        if !pairs.is_empty() {
            let cut = cut % buf.len();
            let mut d = Decoder::new(&buf[..cut]);
            prop_assert!(get_id_value_pairs(&mut d).is_err());
        }

        let mut buf = Vec::new();
        put_leaf_set(&mut buf, &leaves);
        if !leaves.is_empty() {
            let cut = cut % buf.len();
            let mut d = Decoder::new(&buf[..cut]);
            prop_assert!(get_leaf_set(&mut d).is_err());
        }

        let mut buf = Vec::new();
        put_vv_delta(&mut buf, &vv);
        if !vv.is_empty() {
            let cut = cut % buf.len();
            let mut d = Decoder::new(&buf[..cut]);
            prop_assert!(get_vv_delta(&mut d).is_err());
        }
    }
}
