//! Dedicated encode/decode round-trip coverage for `dvv::encode`:
//! `decode(encode(x)) == x` for [`VersionVector`], [`Dvv`] and —
//! uniquely here — [`DvvSet`], whose decoder must reconstruct per-actor
//! entry structure from a flat (context, live dots) wire form. Also pins
//! `encoded_len` against actual output length and checks truncation
//! always errors instead of panicking.

use dvv::encode::{from_bytes, to_bytes, Encode};
use dvv::{Dot, Dvv, DvvSet, ReplicaId, VersionVector};
use proptest::collection::vec;
use proptest::prelude::*;

const ACTORS: u32 = 4;

fn arb_vv() -> impl Strategy<Value = VersionVector<ReplicaId>> {
    vec((0..ACTORS, 0u64..40), 0..10).prop_map(|pairs| {
        pairs
            .into_iter()
            .filter(|(_, c)| *c > 0)
            .map(|(a, c)| (ReplicaId(a), c))
            .collect()
    })
}

fn arb_dvv() -> impl Strategy<Value = Dvv<ReplicaId>> {
    ((0..ACTORS, 1u64..40), arb_vv()).prop_map(|((a, c), mut vv)| {
        let dot = Dot::new(ReplicaId(a), c);
        if vv.contains(&dot) {
            vv.set(ReplicaId(a), c - 1);
        }
        Dvv::new(dot, vv)
    })
}

/// One step in a DvvSet-building script: a write through `server`,
/// either informed (context from a fresh read) or blind, carrying
/// `vlen` payload bytes.
#[derive(Clone, Debug)]
struct SetStep {
    server: u32,
    informed: bool,
    vlen: usize,
}

fn arb_script(server_base: u32) -> impl Strategy<Value = Vec<SetStep>> {
    vec(
        (0..ACTORS, any::<bool>(), 0usize..6).prop_map(move |(s, informed, vlen)| SetStep {
            server: server_base + s,
            informed,
            vlen,
        }),
        0..12,
    )
}

/// Builds a structurally-valid DvvSet the only way real systems do: by
/// running the update protocol. Every reachable entry shape (multiple
/// siblings per actor, actors with knowledge but no live values) shows
/// up across scripts.
fn build_set(script: &[SetStep]) -> DvvSet<ReplicaId, Vec<u8>> {
    let mut set = DvvSet::new();
    for (i, step) in script.iter().enumerate() {
        let ctx = if step.informed {
            set.context()
        } else {
            VersionVector::new()
        };
        set.update(&ctx, ReplicaId(step.server), vec![i as u8; step.vlen]);
    }
    set
}

proptest! {
    #[test]
    fn roundtrip_version_vector(a in arb_vv()) {
        let bytes = to_bytes(&a);
        prop_assert_eq!(bytes.len(), a.encoded_len());
        let back: VersionVector<ReplicaId> = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn roundtrip_dvv(d in arb_dvv()) {
        let bytes = to_bytes(&d);
        prop_assert_eq!(bytes.len(), d.encoded_len());
        let back: Dvv<ReplicaId> = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, d);
    }

    #[test]
    fn roundtrip_dvvset(script in arb_script(0)) {
        let set = build_set(&script);
        let bytes = to_bytes(&set);
        prop_assert_eq!(bytes.len(), set.encoded_len());
        let back: DvvSet<ReplicaId, Vec<u8>> = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, set);
    }

    /// Merged states must round-trip too: sync produces entry shapes
    /// (interleaved winners from both sides) that single-branch updates
    /// never reach. Branches use disjoint server ids, as distinct
    /// physical replicas would.
    #[test]
    fn roundtrip_dvvset_after_sync(a in arb_script(0), b in arb_script(ACTORS)) {
        let merged = build_set(&a).sync(&build_set(&b));
        let bytes = to_bytes(&merged);
        prop_assert_eq!(bytes.len(), merged.encoded_len());
        let back: DvvSet<ReplicaId, Vec<u8>> = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, merged);
    }

    /// Every strict prefix of a valid encoding is invalid — the decoder
    /// reports an error rather than panicking or fabricating a value.
    #[test]
    fn truncation_always_errors(script in arb_script(0), cut in 0usize..64) {
        let set = build_set(&script);
        let bytes = to_bytes(&set);
        prop_assume!(!bytes.is_empty());
        let cut = cut % bytes.len();
        let r = from_bytes::<DvvSet<ReplicaId, Vec<u8>>>(&bytes[..cut]);
        prop_assert!(r.is_err(), "decoding a strict prefix must fail");
    }
}

#[test]
fn varint_boundaries_roundtrip() {
    use dvv::encode::{put_varint, varint_len, Decoder};
    for v in [
        0u64,
        1,
        127,
        128,
        16_383,
        16_384,
        u64::from(u32::MAX),
        u64::MAX - 1,
        u64::MAX,
    ] {
        let mut buf = Vec::new();
        put_varint(&mut buf, v);
        assert_eq!(buf.len(), varint_len(v), "length mismatch for {v}");
        let mut d = Decoder::new(&buf);
        assert_eq!(d.varint().unwrap(), v, "round-trip mismatch for {v}");
        assert_eq!(d.remaining(), 0);
    }
}

#[test]
fn empty_structures_roundtrip() {
    let vv = VersionVector::<ReplicaId>::new();
    assert_eq!(
        from_bytes::<VersionVector<ReplicaId>>(&to_bytes(&vv)).unwrap(),
        vv
    );
    let set = DvvSet::<ReplicaId, Vec<u8>>::new();
    assert_eq!(
        from_bytes::<DvvSet<ReplicaId, Vec<u8>>>(&to_bytes(&set)).unwrap(),
        set
    );
}
