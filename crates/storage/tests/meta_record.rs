//! Property coverage for the dot-mint reservation (meta) record — the
//! storage half of the epoch guard. The guard's crash-safety argument
//! rests on three facts about this one record type, each a property
//! here:
//!
//! * decode ∘ encode = id: any `(epoch, ceiling)` framed by
//!   [`frame_meta`] parses back exactly via [`parse_meta`];
//! * a log torn at an *arbitrary* byte boundary recovers exactly the
//!   component-wise maximum of the reservations wholly inside the kept
//!   prefix — the prior ceiling, never garbage, never a panic;
//! * an arbitrary *bit flip* never yields a recovered ceiling (or
//!   epoch) below the maximum of the records preceding the corruption
//!   — the replay may lose the tail, but it can never roll the guard's
//!   floor back below what an intact prefix had durably promised.
//!
//! All three run through the real recovery path (`LogEngine::open`
//! over the mutilated bytes), not just the codec, because the guard
//! trusts `load_reservation` after a crash, not `parse_meta` in a
//! vacuum. Case count honors `PROPTEST_CASES` (the nightly soak lane
//! raises it).

use dvv::{DvvSet, ReplicaId};
use proptest::collection::vec;
use proptest::prelude::*;
use storage::log::{frame_meta, parse_meta};
use storage::{LogConfig, LogEngine, StorageEngine};

type State = DvvSet<ReplicaId, Vec<u8>>;

/// Frames `seq` into one contiguous log image, returning the buffer
/// plus each record's `(start, len)` span.
fn frame_all(seq: &[(u64, u64)]) -> (Vec<u8>, Vec<(usize, usize)>) {
    let mut buf = Vec::new();
    let mut spans = Vec::with_capacity(seq.len());
    for &(epoch, ceiling) in seq {
        let start = buf.len();
        let len = frame_meta(&mut buf, epoch, ceiling) as usize;
        spans.push((start, len));
    }
    (buf, spans)
}

/// Component-wise maximum over a prefix of reservations — what replay
/// must recover when exactly `n` records survive.
fn prefix_max(seq: &[(u64, u64)], n: usize) -> Option<(u64, u64)> {
    seq[..n]
        .iter()
        .copied()
        .reduce(|(e0, c0), (e, c)| (e0.max(e), c0.max(c)))
}

/// Writes `bytes` as a log file and runs the real recovery path.
fn recover(bytes: &[u8]) -> Option<(u64, u64)> {
    let dir = storage::scratch_dir("meta-prop");
    let path = dir.join("node.log");
    std::fs::write(&path, bytes).expect("write log image");
    let engine: LogEngine<State> =
        LogEngine::open(&path, LogConfig::default()).expect("open never fails on corrupt logs");
    let got = engine.load_reservation();
    drop(engine);
    std::fs::remove_dir_all(dir).ok();
    got
}

/// Values spanning every varint width, including u64::MAX.
fn arb_component() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(1u64),
        Just(127),
        Just(128),
        Just(u64::from(u32::MAX)),
        Just(u64::MAX),
        any::<u64>(),
    ]
}

/// Epochs/ceilings spanning every varint width, including u64::MAX.
fn arb_reservation() -> impl Strategy<Value = (u64, u64)> {
    (arb_component(), arb_component())
}

proptest! {
    /// decode ∘ encode = id, at record granularity, with the framed
    /// length reported exactly and trailing bytes ignored.
    #[test]
    fn meta_roundtrips(res in arb_reservation(), trailing in vec(any::<u8>(), 0..16)) {
        let mut buf = Vec::new();
        let len = frame_meta(&mut buf, res.0, res.1);
        prop_assert_eq!(len as usize, buf.len());
        buf.extend_from_slice(&trailing);
        prop_assert_eq!(parse_meta(&buf), Some(res));
    }

    /// Every proper truncation point — mid-header, mid-body,
    /// mid-checksum, between records — recovers exactly the
    /// reservations wholly inside the kept prefix.
    #[test]
    fn torn_tail_recovers_prior_ceiling(
        seq in vec(arb_reservation(), 1..12),
        cut_unit in 0.0f64..1.0,
    ) {
        let (buf, spans) = frame_all(&seq);
        let cut = ((buf.len() as f64) * cut_unit) as usize;
        let intact = spans.iter().take_while(|(s, l)| s + l <= cut).count();
        prop_assert_eq!(recover(&buf[..cut]), prefix_max(&seq, intact));
    }

    /// A single flipped bit anywhere in the image never rolls the
    /// recovered reservation below the maximum of the records that
    /// precede the corrupted one: the checksum fences the damage, and
    /// replay keeps everything before the fence.
    #[test]
    fn bit_flip_never_lowers_the_ceiling(
        seq in vec(arb_reservation(), 1..12),
        flip_unit in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let (mut buf, spans) = frame_all(&seq);
        let at = ((buf.len() as f64) * flip_unit) as usize % buf.len();
        buf[at] ^= 1 << bit;
        // Records strictly before the one containing the flipped byte
        // are untouched; replay must keep at least those.
        let clean = spans.iter().take_while(|(s, l)| s + l <= at).count();
        let recovered = recover(&buf);
        let (min_epoch, min_ceiling) = prefix_max(&seq, clean).unwrap_or((0, 0));
        let (got_epoch, got_ceiling) = recovered.unwrap_or((0, 0));
        prop_assert!(
            got_epoch >= min_epoch && got_ceiling >= min_ceiling,
            "flip at byte {at} bit {bit}: recovered {recovered:?} \
             below intact prefix ({min_epoch}, {min_ceiling})"
        );
    }
}
