//! Property coverage for the log record codec and torn-tail replay:
//!
//! * decode ∘ encode = id — a `LogEngine` driven through an arbitrary
//!   put/remove/clear script over protocol-built `DvvSet` states,
//!   synced and reopened, replays to exactly the reference contents;
//! * a log truncated at an *arbitrary* byte boundary replays cleanly:
//!   never panics, recovers exactly the records fully inside the kept
//!   prefix, and reports the discarded remainder as torn-tail bytes;
//! * a log with an arbitrary bit flipped replays cleanly: never
//!   panics, recovers exactly the records before the corrupt one, and
//!   discards the rest (the log trusts nothing past a bad checksum).

use std::collections::BTreeMap;

use dvv::{DvvSet, ReplicaId, VersionVector};
use proptest::collection::vec;
use proptest::prelude::*;
use storage::{LogConfig, LogEngine, StorageEngine};

type State = DvvSet<ReplicaId, Vec<u8>>;
type Reference = BTreeMap<Vec<u8>, State>;

const KEYS: u8 = 4;
const SERVERS: u32 = 3;

/// One step of a storage script: mutate a key's DvvSet through the
/// update protocol (so every reachable sibling/context shape occurs),
/// remove a key, or clear the store.
#[derive(Clone, Debug)]
enum Op {
    Put {
        key: u8,
        server: u32,
        informed: bool,
        vlen: usize,
    },
    Remove {
        key: u8,
    },
    Clear,
}

fn arb_put() -> impl Strategy<Value = Op> {
    (0..KEYS, 0..SERVERS, any::<bool>(), 0usize..6).prop_map(|(key, server, informed, vlen)| {
        Op::Put {
            key,
            server,
            informed,
            vlen,
        }
    })
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    // the vendored prop_oneof! picks uniformly; weight by repetition so
    // puts dominate (a store script is mostly writes)
    let op = prop_oneof![
        arb_put(),
        arb_put(),
        arb_put(),
        arb_put(),
        (0..KEYS).prop_map(|key| Op::Remove { key }),
        Just(Op::Clear),
    ];
    vec(op, 0..40)
}

/// Applies step `i` of the script to the in-memory reference.
fn apply_ref(reference: &mut Reference, i: usize, op: &Op) {
    match op {
        Op::Put {
            key,
            server,
            informed,
            vlen,
        } => {
            let set = reference.entry(vec![*key]).or_default();
            let ctx = if *informed {
                set.context()
            } else {
                VersionVector::new()
            };
            set.update(&ctx, ReplicaId(*server), vec![i as u8; *vlen]);
        }
        Op::Remove { key } => {
            reference.remove(&vec![*key]);
        }
        Op::Clear => reference.clear(),
    }
}

/// Applies step `i` to the engine under test, mirroring [`apply_ref`]
/// through the engine's mutation doors.
fn apply_engine(engine: &mut LogEngine<State>, i: usize, op: &Op) {
    match op {
        Op::Put {
            key,
            server,
            informed,
            vlen,
        } => {
            let value = vec![i as u8; *vlen];
            engine.apply(&[*key], &mut State::default, &mut |set| {
                let ctx = if *informed {
                    set.context()
                } else {
                    VersionVector::new()
                };
                set.update(&ctx, ReplicaId(*server), value.clone());
            });
        }
        Op::Remove { key } => {
            engine.remove(&[*key]);
        }
        Op::Clear => engine.clear(),
    }
}

/// The reference contents after replaying the first `n` script steps.
fn reference_after(ops: &[Op], n: usize) -> Reference {
    let mut reference = Reference::new();
    for (i, op) in ops[..n].iter().enumerate() {
        apply_ref(&mut reference, i, op);
    }
    reference
}

fn contents(engine: &LogEngine<State>) -> Reference {
    engine.iter().map(|(k, s)| (k.clone(), s.clone())).collect()
}

/// Write-through, compaction disabled: record boundaries on disk map
/// 1:1 to script steps, which the truncation/corruption properties
/// rely on to predict the recovered prefix.
fn plain_config() -> LogConfig {
    LogConfig {
        compact_min_bytes: u64::MAX,
        ..LogConfig::write_through()
    }
}

/// Writes the script through a fresh engine at `path`, returning per
/// step the durable end offset and the cumulative record count — not
/// every op writes a record (removing an absent key is a no-op).
fn write_script(path: &std::path::Path, ops: &[Op]) -> (Vec<u64>, Vec<u64>) {
    let mut engine: LogEngine<State> = LogEngine::open(path, plain_config()).unwrap();
    let mut ends = Vec::with_capacity(ops.len());
    let mut recs = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        apply_engine(&mut engine, i, op);
        ends.push(engine.durable_bytes());
        recs.push(engine.stats().appends);
    }
    (ends, recs)
}

proptest! {
    #[test]
    fn reopen_replays_exactly_the_reference_contents(ops in arb_ops()) {
        let dir = storage::scratch_dir("prop-roundtrip");
        let path = dir.join("log");
        let (_, recs) = write_script(&path, &ops);

        let back: LogEngine<State> = LogEngine::open(&path, plain_config()).unwrap();
        prop_assert_eq!(back.stats().torn_tail_bytes, 0);
        prop_assert_eq!(back.stats().replayed_records, recs.last().copied().unwrap_or(0));
        prop_assert_eq!(contents(&back), reference_after(&ops, ops.len()));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn truncated_tail_recovers_the_intact_record_prefix(
        ops in arb_ops(),
        cut in any::<u64>(),
    ) {
        let dir = storage::scratch_dir("prop-truncate");
        let path = dir.join("log");
        let (ends, recs) = write_script(&path, &ops);

        let total = ends.last().copied().unwrap_or(0);
        let cut_at = cut % (total + 1); // 0..=total
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(cut_at).unwrap();
        drop(file);

        // the survivors: every op whose records lie fully inside the
        // kept prefix (no-op removes ride along with zero records)
        let survivors = ends.iter().filter(|e| **e <= cut_at).count();
        let boundary = if survivors == 0 { 0 } else { ends[survivors - 1] };
        let survivor_records = if survivors == 0 { 0 } else { recs[survivors - 1] };

        let back: LogEngine<State> = LogEngine::open(&path, plain_config()).unwrap();
        prop_assert_eq!(back.stats().replayed_records, survivor_records);
        prop_assert_eq!(back.stats().torn_tail_bytes, cut_at - boundary);
        prop_assert_eq!(
            back.durable_bytes(),
            boundary,
            "file truncated back to the last intact record"
        );
        prop_assert_eq!(contents(&back), reference_after(&ops, survivors));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn bit_flipped_tail_never_panics_and_keeps_the_prefix_before_it(
        ops in arb_ops(),
        flip in any::<u64>(),
        bit in 0u8..8,
    ) {
        let dir = storage::scratch_dir("prop-flip");
        let path = dir.join("log");
        let (ends, recs) = write_script(&path, &ops);

        let total = ends.last().copied().unwrap_or(0);
        prop_assume!(total > 0);
        let at = flip % total;
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[at as usize] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        // replay keeps every record that ends at or before the corrupt
        // one's start (the record containing byte `at` is the first
        // whose end offset exceeds `at`); everything after the corrupt
        // record is discarded too — nothing past a bad checksum is
        // trusted
        let survivors = ends.iter().filter(|e| **e <= at).count();
        let boundary = if survivors == 0 { 0 } else { ends[survivors - 1] };
        let survivor_records = if survivors == 0 { 0 } else { recs[survivors - 1] };

        let back: LogEngine<State> = LogEngine::open(&path, plain_config()).unwrap();
        prop_assert_eq!(back.stats().replayed_records, survivor_records);
        prop_assert_eq!(contents(&back), reference_after(&ops, survivors));
        prop_assert_eq!(back.durable_bytes(), boundary);
        prop_assert_eq!(std::fs::metadata(&path).unwrap().len(), boundary);
        std::fs::remove_dir_all(dir).ok();
    }
}
