//! [`MemEngine`]: the original in-memory backend — a plain ordered map.

use std::collections::BTreeMap;
use std::fmt;

use crate::{Key, StorageEngine};

/// Purely in-memory storage: exactly the `BTreeMap` the store used
/// before the engine seam existed. Nothing survives a crash; `sync` is
/// a no-op.
#[derive(Clone, Default)]
pub struct MemEngine<S> {
    map: BTreeMap<Key, S>,
    reservation: Option<(u64, u64)>,
}

impl<S> MemEngine<S> {
    /// Creates an empty engine.
    #[must_use]
    pub fn new() -> Self {
        MemEngine {
            map: BTreeMap::new(),
            reservation: None,
        }
    }

    /// Builds an engine pre-populated with `map` (snapshot support).
    #[must_use]
    pub fn from_map(map: BTreeMap<Key, S>) -> Self {
        MemEngine {
            map,
            reservation: None,
        }
    }
}

impl<S> fmt::Debug for MemEngine<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemEngine")
            .field("keys", &self.map.len())
            .finish()
    }
}

impl<S: Clone + Send + 'static> StorageEngine<S> for MemEngine<S> {
    fn get(&self, key: &[u8]) -> Option<&S> {
        self.map.get(key)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn apply(
        &mut self,
        key: &[u8],
        init: &mut dyn FnMut() -> S,
        mutate: &mut dyn FnMut(&mut S),
    ) -> &S {
        let state = self.map.entry(key.to_vec()).or_insert_with(&mut *init);
        mutate(state);
        state
    }

    fn remove(&mut self, key: &[u8]) -> bool {
        self.map.remove(key).is_some()
    }

    fn clear(&mut self) {
        self.map.clear();
    }

    fn iter(&self) -> Box<dyn Iterator<Item = (&Key, &S)> + '_> {
        Box::new(self.map.iter())
    }

    fn snapshot(&self) -> Box<dyn StorageEngine<S>> {
        // Detached audit copy: contents only, no reservation (snapshots
        // never mint dots) — matching `LogEngine::snapshot`.
        Box::new(MemEngine::from_map(self.map.clone()))
    }

    fn sync(&mut self) {}

    fn load_reservation(&self) -> Option<(u64, u64)> {
        self.reservation
    }

    fn store_reservation(&mut self, epoch: u64, ceiling: u64) {
        self.reservation = Some((epoch, ceiling));
    }

    fn kind(&self) -> &'static str {
        "mem"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_remove_clear() {
        let mut e: MemEngine<u64> = MemEngine::new();
        let v = e.apply(b"a", &mut || 10, &mut |s| *s += 1);
        assert_eq!(*v, 11);
        e.apply(b"a", &mut || 10, &mut |s| *s += 1);
        assert_eq!(e.get(b"a"), Some(&12));
        assert_eq!(e.len(), 1);
        assert!(e.contains(b"a"));
        assert!(e.remove(b"a"));
        assert!(!e.remove(b"a"));
        e.apply(b"b", &mut || 0, &mut |_| {});
        e.clear();
        assert!(e.is_empty());
    }

    #[test]
    fn reservation_round_trips_in_process() {
        let mut e: MemEngine<u64> = MemEngine::new();
        assert_eq!(e.load_reservation(), None);
        e.store_reservation(2, 1024);
        assert_eq!(e.load_reservation(), Some((2, 1024)));
        // snapshots are detached audit copies; they do not carry the
        // reservation (they never mint dots)
        assert_eq!(e.snapshot().load_reservation(), None);
    }

    #[test]
    fn snapshot_is_detached() {
        let mut e: MemEngine<u64> = MemEngine::new();
        e.apply(b"k", &mut || 1, &mut |_| {});
        let snap = e.snapshot();
        e.apply(b"k", &mut || 0, &mut |s| *s = 9);
        assert_eq!(
            snap.get(b"k"),
            Some(&1),
            "snapshot unaffected by later writes"
        );
        assert_eq!(snap.kind(), "mem");
    }
}
