//! [`LogEngine`]: an append-only, checksummed, compacting record log.
//!
//! ## On-disk format
//!
//! The log is a flat sequence of records, each framed as
//!
//! ```text
//! varint(body_len) · body · u64le(fnv1a64(body))
//! ```
//!
//! with the body itself
//!
//! ```text
//! tag(1 byte: 1=put, 2=remove, 3=clear) · varint(key_len) · key · state
//! ```
//!
//! where `state` (puts only) is the per-key state in the crate-standard
//! [`dvv::encode`] format. A fourth record kind carries the dot-mint
//! reservation (tag 4: `varint(epoch) · varint(ceiling)`, no key);
//! replay folds the component-wise maximum over every meta record seen,
//! so the recovered reservation is monotone in what was durably stored. Varint framing and the trailing checksum make
//! a torn final record — the expected artefact of dying mid-append —
//! self-announcing: replay stops at the first frame that is short,
//! fails its checksum, or fails to decode, and truncates the file back
//! to the last intact record. Nothing before a torn tail is ever lost;
//! nothing after it is ever trusted.
//!
//! ## Durability interval
//!
//! Appends buffer in user space and reach the file (with `sync_data`)
//! as a group, every [`LogConfig::sync_every_records`] records or
//! [`LogConfig::sync_every_bytes`] bytes, whichever comes first — so a
//! crash genuinely loses the un-synced tail, which is exactly the
//! durability/throughput trade the knob expresses. Replication is the
//! recovery story for that tail: the protocol layer re-fetches it from
//! peers via rejoin + anti-entropy.
//!
//! ## Compaction
//!
//! The in-memory key→offset index tracks the latest durable record per
//! key, so `live_bytes` (latest records) vs `durable_bytes` (the whole
//! file) measures garbage exactly. When the file exceeds
//! [`LogConfig::compact_min_bytes`] and the garbage fraction exceeds
//! [`LogConfig::compact_garbage_ratio`], the engine rewrites the live
//! records to a fresh file and atomically renames it over the log —
//! rewriting the live set, truncating the dead tail.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use dvv::encode::{put_varint, Decoder, Encode};

use crate::{fnv1a64, Key, MemEngine, StorageEngine};

const TAG_PUT: u8 = 1;
const TAG_REMOVE: u8 = 2;
const TAG_CLEAR: u8 = 3;
const TAG_META: u8 = 4;

/// Durability and compaction knobs for a [`LogEngine`].
///
/// **Reservation fsync cadence.** Dot-mint reservations
/// ([`StorageEngine::store_reservation`]) deliberately ignore the
/// group-sync interval: each one syncs immediately (flushing any
/// buffered data records with it), because the caller is about to mint
/// dots up to the new ceiling and let them escape to peers — a
/// reservation lost to a crash would defeat the epoch guard entirely.
/// The store amortises that cost by reserving counter *headroom*
/// (`StoreConfig::dot_headroom` upstream), so one reservation fsync
/// covers many mints and the group-sync write path stays within a few
/// percent of its unguarded cost (see `bench-baselines/BENCH_storage.json`).
#[derive(Clone, Copy, Debug)]
pub struct LogConfig {
    /// Group-sync after this many buffered records (1 = write-through:
    /// every append is durable before the call returns).
    pub sync_every_records: usize,
    /// ... or after this many buffered bytes, whichever comes first.
    pub sync_every_bytes: usize,
    /// Never compact while the file is smaller than this.
    pub compact_min_bytes: u64,
    /// Compact when `(durable - live) / durable` exceeds this fraction.
    pub compact_garbage_ratio: f64,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            sync_every_records: 64,
            sync_every_bytes: 64 * 1024,
            compact_min_bytes: 256 * 1024,
            compact_garbage_ratio: 0.5,
        }
    }
}

impl LogConfig {
    /// Write-through configuration: every record is synced before its
    /// mutation returns. The strongest durability the engine offers —
    /// a crash loses nothing that was acknowledged.
    #[must_use]
    pub fn write_through() -> Self {
        LogConfig {
            sync_every_records: 1,
            ..LogConfig::default()
        }
    }
}

/// Counters a [`LogEngine`] keeps about its own behaviour.
#[derive(Clone, Copy, Debug, Default)]
pub struct LogStats {
    /// Records appended (buffered) since open.
    pub appends: u64,
    /// Group syncs performed.
    pub syncs: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Valid records replayed at open.
    pub replayed_records: u64,
    /// Bytes discarded at open as a torn/corrupt tail.
    pub torn_tail_bytes: u64,
}

/// Latest durable record location for one key.
#[derive(Clone, Copy, Debug)]
struct RecordSpan {
    #[allow(dead_code)]
    // offset is the index's raison d'être for point reads; kept for debug dumps
    offset: u64,
    len: u64,
}

/// What a buffered (not yet durable) record will do to the index once
/// its group sync lands.
enum PendingOp {
    Put {
        key: Key,
        len: u64,
    },
    Remove {
        key: Key,
        len: u64,
    },
    Clear {
        len: u64,
    },
    /// A reservation record: affects no key, only advances the offset.
    Meta {
        len: u64,
    },
}

/// Typed record codec: monomorphised `dvv::encode` entry points, taken
/// as plain function pointers so the engine itself stays non-generic
/// over the `Encode` bound (only [`LogEngine::open`] requires it).
struct Codec<S> {
    enc: fn(&S, &mut Vec<u8>),
    dec: fn(&[u8]) -> Option<S>,
}

impl<S> Clone for Codec<S> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<S> Copy for Codec<S> {}

fn enc_state<S: Encode>(s: &S, buf: &mut Vec<u8>) {
    s.encode(buf);
}

fn dec_state<S: Encode>(bytes: &[u8]) -> Option<S> {
    dvv::encode::from_bytes(bytes).ok()
}

/// The append-only durable engine. See the module docs for the format
/// and the durability/compaction model.
pub struct LogEngine<S> {
    /// The working set: every live key's current state, always in sync
    /// with the durable log plus the pending buffer.
    map: BTreeMap<Key, S>,
    /// key → latest *durable* record (drives garbage accounting).
    index: BTreeMap<Key, RecordSpan>,
    file: File,
    path: PathBuf,
    cfg: LogConfig,
    codec: Codec<S>,
    /// Framed records written but not yet synced; lost on crash.
    pending: Vec<u8>,
    pending_ops: Vec<PendingOp>,
    /// Valid bytes in the file (everything synced).
    durable_bytes: u64,
    /// Bytes of latest-per-key durable records.
    live_bytes: u64,
    /// Recovered/stored dot-mint reservation `(epoch, ceiling)`.
    reservation: Option<(u64, u64)>,
    stats: LogStats,
    scratch: Vec<u8>,
}

impl<S> fmt::Debug for LogEngine<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LogEngine")
            .field("path", &self.path)
            .field("keys", &self.map.len())
            .field("durable_bytes", &self.durable_bytes)
            .field("live_bytes", &self.live_bytes)
            .field("pending_bytes", &self.pending.len())
            .field("stats", &self.stats)
            .finish()
    }
}

/// One decoded record from a replay scan.
enum Record<S> {
    Put { key: Key, state: S },
    Remove { key: Key },
    Clear,
    Meta { epoch: u64, ceiling: u64 },
}

/// Parses the record framed at `bytes[at..]`. Returns the record and
/// the offset just past it, or `None` for anything short, corrupt or
/// undecodable — the torn-tail signal.
fn parse_record<S>(
    bytes: &[u8],
    at: usize,
    dec: fn(&[u8]) -> Option<S>,
) -> Option<(Record<S>, usize)> {
    let mut d = Decoder::new(&bytes[at..]);
    let body_len = usize::try_from(d.varint().ok()?).ok()?;
    let frame_at = bytes.len() - d.remaining() - at; // varint width
    let body_start = at + frame_at;
    let body_end = body_start.checked_add(body_len)?;
    let sum_end = body_end.checked_add(8)?;
    if sum_end > bytes.len() {
        return None; // short frame: torn tail
    }
    let body = &bytes[body_start..body_end];
    let sum = u64::from_le_bytes(bytes[body_end..sum_end].try_into().ok()?);
    if fnv1a64(body) != sum {
        return None; // checksum mismatch: corrupt
    }
    let mut b = Decoder::new(body);
    let tag = b.byte().ok()?;
    let record = match tag {
        TAG_CLEAR => {
            if b.remaining() != 0 {
                return None;
            }
            Record::Clear
        }
        TAG_META => {
            let epoch = b.varint().ok()?;
            let ceiling = b.varint().ok()?;
            if b.remaining() != 0 {
                return None;
            }
            Record::Meta { epoch, ceiling }
        }
        TAG_PUT | TAG_REMOVE => {
            let key_len = usize::try_from(b.varint().ok()?).ok()?;
            let key = b.bytes(key_len).ok()?.to_vec();
            if tag == TAG_REMOVE {
                if b.remaining() != 0 {
                    return None;
                }
                Record::Remove { key }
            } else {
                let state = dec(b.bytes(b.remaining()).ok()?)?;
                Record::Put { key, state }
            }
        }
        _ => return None,
    };
    Some((record, sum_end))
}

/// Frames one dot-mint reservation (meta) record onto `out`, returning
/// its framed length. Public so the proptest suite can exercise the
/// reservation codec at record granularity.
pub fn frame_meta(out: &mut Vec<u8>, epoch: u64, ceiling: u64) -> u64 {
    let body_len = 1 + dvv::encode::varint_len(epoch) + dvv::encode::varint_len(ceiling);
    let before = out.len();
    put_varint(out, body_len as u64);
    let body_start = out.len();
    out.push(TAG_META);
    put_varint(out, epoch);
    put_varint(out, ceiling);
    debug_assert_eq!(out.len() - body_start, body_len);
    let sum = fnv1a64(&out[body_start..]);
    out.extend_from_slice(&sum.to_le_bytes());
    (out.len() - before) as u64
}

fn dec_never(_: &[u8]) -> Option<()> {
    None
}

/// Parses the record framed at the start of `bytes` as a reservation
/// record: `Some((epoch, ceiling))` only for a complete, checksummed
/// meta frame — `None` for anything torn, corrupt, or of another kind.
/// The proptest counterpart of [`frame_meta`].
#[must_use]
pub fn parse_meta(bytes: &[u8]) -> Option<(u64, u64)> {
    match parse_record::<()>(bytes, 0, dec_never) {
        Some((Record::Meta { epoch, ceiling }, _)) => Some((epoch, ceiling)),
        _ => None,
    }
}

/// Scans the *full durable history* of the log at `path`: every intact
/// put record's `(key, state)` in append order, including records whose
/// key was later overwritten, removed or cleared — the ones the live
/// replay forgets. Stops at the first torn or corrupt frame, exactly
/// like recovery replay.
///
/// This is the audit surface for oracles over *everything a replica
/// ever durably applied*, not just what it currently holds — the
/// dot-uniqueness census runs over it, because a re-minted dot's first
/// bearer is usually dominated (and gone from the live states) by the
/// time a fleet can be audited.
///
/// # Errors
///
/// Propagates I/O errors from opening or reading the file. A missing
/// file is an empty history.
pub fn scan_history<S: Encode>(path: impl AsRef<Path>) -> io::Result<Vec<(Key, S)>> {
    let bytes = match std::fs::read(path.as_ref()) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut out = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        let Some((record, next)) = parse_record(&bytes, at, dec_state::<S>) else {
            break; // torn/corrupt tail
        };
        if let Record::Put { key, state } = record {
            out.push((key, state));
        }
        at = next;
    }
    Ok(out)
}

/// Frames one record (body per the module docs) onto `out`.
fn frame_record(out: &mut Vec<u8>, tag: u8, key: &[u8], state: Option<&[u8]>) -> u64 {
    let state_len = state.map_or(0, <[u8]>::len);
    let body_len = match tag {
        TAG_CLEAR => 1,
        _ => 1 + dvv::encode::varint_len(key.len() as u64) + key.len() + state_len,
    };
    let before = out.len();
    put_varint(out, body_len as u64);
    let body_start = out.len();
    out.push(tag);
    if tag != TAG_CLEAR {
        put_varint(out, key.len() as u64);
        out.extend_from_slice(key);
        if let Some(state) = state {
            out.extend_from_slice(state);
        }
    }
    debug_assert_eq!(out.len() - body_start, body_len);
    let sum = fnv1a64(&out[body_start..]);
    out.extend_from_slice(&sum.to_le_bytes());
    (out.len() - before) as u64
}

impl<S> LogEngine<S>
where
    S: Clone + Send + 'static,
{
    /// Opens (creating if absent) the log at `path` and replays it into
    /// memory, tolerating a torn or corrupt final record: replay stops
    /// at the first invalid frame and truncates the file back to the
    /// last intact record, so the recovered contents are exactly the
    /// durable prefix.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from opening, reading or truncating the
    /// file. Corruption is *not* an error — it is a torn tail.
    pub fn open(path: impl Into<PathBuf>, cfg: LogConfig) -> io::Result<Self>
    where
        S: Encode,
    {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let codec = Codec::<S> {
            enc: enc_state::<S>,
            dec: dec_state::<S>,
        };
        let mut map = BTreeMap::new();
        let mut index = BTreeMap::new();
        let mut live_bytes = 0u64;
        let mut reservation: Option<(u64, u64)> = None;
        let mut stats = LogStats::default();
        let mut at = 0usize;
        while at < bytes.len() {
            let Some((record, next)) = parse_record(&bytes, at, codec.dec) else {
                break; // torn/corrupt tail — everything from `at` is discarded
            };
            let len = (next - at) as u64;
            match record {
                Record::Put { key, state } => {
                    if let Some(old) = index.insert(
                        key.clone(),
                        RecordSpan {
                            offset: at as u64,
                            len,
                        },
                    ) {
                        live_bytes -= old.len;
                    }
                    live_bytes += len;
                    map.insert(key, state);
                }
                Record::Remove { key } => {
                    if let Some(old) = index.remove(&key) {
                        live_bytes -= old.len;
                    }
                    map.remove(&key);
                }
                Record::Clear => {
                    live_bytes = 0;
                    index.clear();
                    map.clear();
                }
                Record::Meta { epoch, ceiling } => {
                    // Component-wise max: the recovered reservation is
                    // monotone in what was durably stored, whatever order
                    // (or duplication) compaction left the records in.
                    let (e0, c0) = reservation.unwrap_or((0, 0));
                    reservation = Some((e0.max(epoch), c0.max(ceiling)));
                }
            }
            stats.replayed_records += 1;
            at = next;
        }
        stats.torn_tail_bytes = (bytes.len() - at) as u64;
        if at < bytes.len() {
            file.set_len(at as u64)?;
        }
        file.seek(SeekFrom::Start(at as u64))?;

        Ok(LogEngine {
            map,
            index,
            file,
            path,
            cfg,
            codec,
            pending: Vec::new(),
            pending_ops: Vec::new(),
            durable_bytes: at as u64,
            live_bytes,
            reservation,
            stats,
            scratch: Vec::new(),
        })
    }

    /// The log file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Behaviour counters.
    #[must_use]
    pub fn stats(&self) -> LogStats {
        self.stats
    }

    /// Valid (synced) bytes in the log file.
    #[must_use]
    pub fn durable_bytes(&self) -> u64 {
        self.durable_bytes
    }

    /// Bytes of latest-per-key durable records (the live set).
    #[must_use]
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Bytes buffered but not yet durable (lost if the process dies
    /// before the next group sync).
    #[must_use]
    pub fn pending_bytes(&self) -> usize {
        self.pending.len()
    }

    /// Buffers one framed record and group-syncs if the durability
    /// interval is reached.
    fn push_record(&mut self, op: PendingOp) {
        self.stats.appends += 1;
        self.pending_ops.push(op);
        if self.pending_ops.len() >= self.cfg.sync_every_records
            || self.pending.len() >= self.cfg.sync_every_bytes
        {
            self.group_sync();
        }
    }

    /// Writes + syncs the pending buffer and folds its ops into the
    /// durable index, then compacts if the garbage threshold is hit.
    fn group_sync(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        self.file
            .write_all(&self.pending)
            .expect("log append write");
        self.file.sync_data().expect("log append sync");
        self.stats.syncs += 1;
        let mut offset = self.durable_bytes;
        for op in self.pending_ops.drain(..) {
            match op {
                PendingOp::Put { key, len } => {
                    if let Some(old) = self.index.insert(key, RecordSpan { offset, len }) {
                        self.live_bytes -= old.len;
                    }
                    self.live_bytes += len;
                    offset += len;
                }
                PendingOp::Remove { key, len } => {
                    if let Some(old) = self.index.remove(&key) {
                        self.live_bytes -= old.len;
                    }
                    offset += len;
                }
                PendingOp::Clear { len } => {
                    self.index.clear();
                    self.live_bytes = 0;
                    offset += len;
                }
                PendingOp::Meta { len } => {
                    offset += len;
                }
            }
        }
        self.durable_bytes += self.pending.len() as u64;
        debug_assert_eq!(offset, self.durable_bytes);
        self.pending.clear();
        self.maybe_compact();
    }

    /// Rewrites the live records to a fresh file and renames it over
    /// the log when the garbage fraction warrants it.
    fn maybe_compact(&mut self) {
        if self.durable_bytes < self.cfg.compact_min_bytes {
            return;
        }
        let garbage = self.durable_bytes.saturating_sub(self.live_bytes) as f64;
        if garbage / self.durable_bytes as f64 <= self.cfg.compact_garbage_ratio {
            return;
        }
        let mut buf = Vec::new();
        let mut index = BTreeMap::new();
        // The reservation must survive compaction: rewrite it first, so
        // even a crash mid-rename leaves one file carrying it intact.
        if let Some((epoch, ceiling)) = self.reservation {
            frame_meta(&mut buf, epoch, ceiling);
        }
        for (key, state) in &self.map {
            let offset = buf.len() as u64;
            self.scratch.clear();
            (self.codec.enc)(state, &mut self.scratch);
            let len = frame_record(&mut buf, TAG_PUT, key, Some(&self.scratch));
            index.insert(key.clone(), RecordSpan { offset, len });
        }
        let tmp = self.path.with_extension("compact");
        let write = (|| -> io::Result<File> {
            let mut f = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(&buf)?;
            f.sync_data()?;
            std::fs::rename(&tmp, &self.path)?;
            f.seek(SeekFrom::End(0))?;
            Ok(f)
        })();
        self.file = write.expect("log compaction rewrite");
        self.index = index;
        self.durable_bytes = buf.len() as u64;
        self.live_bytes = self.durable_bytes;
        self.stats.compactions += 1;
    }
}

impl<S> StorageEngine<S> for LogEngine<S>
where
    S: Clone + Send + 'static,
{
    fn get(&self, key: &[u8]) -> Option<&S> {
        self.map.get(key)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn apply(
        &mut self,
        key: &[u8],
        init: &mut dyn FnMut() -> S,
        mutate: &mut dyn FnMut(&mut S),
    ) -> &S {
        let enc = self.codec.enc;
        self.scratch.clear();
        {
            let state = self.map.entry(key.to_vec()).or_insert_with(&mut *init);
            mutate(state);
            let mut state_bytes = std::mem::take(&mut self.scratch);
            enc(state, &mut state_bytes);
            let len = frame_record(&mut self.pending, TAG_PUT, key, Some(&state_bytes));
            state_bytes.clear();
            self.scratch = state_bytes;
            self.push_record(PendingOp::Put {
                key: key.to_vec(),
                len,
            });
        }
        &self.map[key]
    }

    fn remove(&mut self, key: &[u8]) -> bool {
        if self.map.remove(key).is_none() {
            return false;
        }
        let len = frame_record(&mut self.pending, TAG_REMOVE, key, None);
        self.push_record(PendingOp::Remove {
            key: key.to_vec(),
            len,
        });
        true
    }

    fn clear(&mut self) {
        self.map.clear();
        let len = frame_record(&mut self.pending, TAG_CLEAR, &[], None);
        self.push_record(PendingOp::Clear { len });
    }

    fn iter(&self) -> Box<dyn Iterator<Item = (&Key, &S)> + '_> {
        Box::new(self.map.iter())
    }

    fn snapshot(&self) -> Box<dyn StorageEngine<S>> {
        Box::new(MemEngine::from_map(self.map.clone()))
    }

    fn sync(&mut self) {
        self.group_sync();
    }

    fn load_reservation(&self) -> Option<(u64, u64)> {
        self.reservation
    }

    fn store_reservation(&mut self, epoch: u64, ceiling: u64) {
        // Monotone in-memory view, matching the replay fold.
        let (e0, c0) = self.reservation.unwrap_or((0, 0));
        self.reservation = Some((e0.max(epoch), c0.max(ceiling)));
        let len = frame_meta(&mut self.pending, epoch, ceiling);
        self.stats.appends += 1;
        self.pending_ops.push(PendingOp::Meta { len });
        // Reservations ignore the group-sync cadence: they must be
        // durable before the caller mints into the reserved range (see
        // the `LogConfig` docs). Any buffered data records ride along.
        self.group_sync();
    }

    fn kind(&self) -> &'static str {
        "log"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch_dir;

    fn drive(e: &mut dyn StorageEngine<u64>, script: &[(u8, u64)]) {
        for &(k, v) in script {
            match v {
                u64::MAX => {
                    e.remove(&[k]);
                }
                _ => {
                    e.apply(&[k], &mut || 0, &mut |s| *s = *s * 31 + v);
                }
            }
        }
    }

    #[test]
    fn mem_and_log_agree_on_a_mixed_script() {
        let dir = scratch_dir("agree");
        let script: Vec<(u8, u64)> = (0..200u64)
            .map(|i| {
                let k = (i * 7 % 23) as u8;
                if i % 11 == 3 {
                    (k, u64::MAX)
                } else {
                    (k, i)
                }
            })
            .collect();
        let mut mem: MemEngine<u64> = MemEngine::new();
        let mut log: LogEngine<u64> =
            LogEngine::open(dir.join("agree.log"), LogConfig::default()).unwrap();
        drive(&mut mem, &script);
        drive(&mut log, &script);
        let a: Vec<_> = mem.iter().map(|(k, v)| (k.clone(), *v)).collect();
        let b: Vec<_> = log.iter().map(|(k, v)| (k.clone(), *v)).collect();
        assert_eq!(a, b, "engines must be behaviour-identical");
        assert_eq!(mem.len(), log.len());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn reopen_replays_the_synced_prefix() {
        let dir = scratch_dir("reopen");
        let path = dir.join("store.log");
        let mut log: LogEngine<u64> = LogEngine::open(&path, LogConfig::write_through()).unwrap();
        for i in 0..50u64 {
            log.apply(&i.to_be_bytes(), &mut || 0, &mut |s| *s = i * i);
        }
        log.remove(&7u64.to_be_bytes());
        drop(log);
        let back: LogEngine<u64> = LogEngine::open(&path, LogConfig::default()).unwrap();
        assert_eq!(back.len(), 49);
        assert_eq!(back.get(&3u64.to_be_bytes()), Some(&9));
        assert_eq!(back.get(&7u64.to_be_bytes()), None);
        assert_eq!(back.stats().replayed_records, 51);
        assert_eq!(back.stats().torn_tail_bytes, 0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn crash_before_group_sync_loses_exactly_the_unsynced_tail() {
        let dir = scratch_dir("tail");
        let path = dir.join("store.log");
        let cfg = LogConfig {
            sync_every_records: 8,
            ..LogConfig::default()
        };
        let mut log: LogEngine<u64> = LogEngine::open(&path, cfg).unwrap();
        for i in 0..8u64 {
            log.apply(&[i as u8], &mut || 0, &mut |s| *s = i);
        }
        assert_eq!(log.pending_bytes(), 0, "8th record triggers the group sync");
        for i in 8..13u64 {
            log.apply(&[i as u8], &mut || 0, &mut |s| *s = i);
        }
        assert!(log.pending_bytes() > 0, "records 9-13 are buffered only");
        drop(log); // crash: pending buffer never reaches the file
        let back: LogEngine<u64> = LogEngine::open(&path, cfg).unwrap();
        assert_eq!(back.len(), 8, "only the synced group survives");
        assert_eq!(back.get(&[9u8]), None);
        // ... and an explicit sync makes the tail durable
        let mut log = back;
        for i in 8..13u64 {
            log.apply(&[i as u8], &mut || 0, &mut |s| *s = i);
        }
        log.sync();
        drop(log);
        let back: LogEngine<u64> = LogEngine::open(&path, cfg).unwrap();
        assert_eq!(back.len(), 13);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn compaction_truncates_garbage_and_preserves_contents() {
        let dir = scratch_dir("compact");
        let path = dir.join("store.log");
        let cfg = LogConfig {
            sync_every_records: 1,
            compact_min_bytes: 512,
            compact_garbage_ratio: 0.5,
            ..LogConfig::default()
        };
        let mut log: LogEngine<u64> = LogEngine::open(&path, cfg).unwrap();
        for round in 0..200u64 {
            for k in 0..4u8 {
                log.apply(&[k], &mut || 0, &mut |s| *s = round);
            }
        }
        assert!(
            log.stats().compactions > 0,
            "overwrites must trigger compaction"
        );
        assert!(
            log.durable_bytes() < 4096,
            "file stays near the live set: {} bytes",
            log.durable_bytes()
        );
        let on_disk = std::fs::metadata(&path).unwrap().len();
        assert_eq!(on_disk, log.durable_bytes());
        drop(log);
        let back: LogEngine<u64> = LogEngine::open(&path, cfg).unwrap();
        assert_eq!(back.len(), 4);
        for k in 0..4u8 {
            assert_eq!(back.get(&[k]), Some(&199));
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn clear_record_replays_as_empty() {
        let dir = scratch_dir("clear");
        let path = dir.join("store.log");
        let mut log: LogEngine<u64> = LogEngine::open(&path, LogConfig::write_through()).unwrap();
        log.apply(b"a", &mut || 0, &mut |s| *s = 1);
        log.apply(b"b", &mut || 0, &mut |s| *s = 2);
        log.clear();
        log.apply(b"c", &mut || 0, &mut |s| *s = 3);
        drop(log);
        let back: LogEngine<u64> = LogEngine::open(&path, LogConfig::default()).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.get(b"c"), Some(&3));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn reservation_survives_reopen_and_is_synced_immediately() {
        let dir = scratch_dir("resv");
        let path = dir.join("store.log");
        let cfg = LogConfig {
            sync_every_records: 1000, // group sync far away
            ..LogConfig::default()
        };
        let mut log: LogEngine<u64> = LogEngine::open(&path, cfg).unwrap();
        log.apply(b"a", &mut || 0, &mut |s| *s = 1);
        assert!(log.pending_bytes() > 0, "data record is buffered only");
        log.store_reservation(1, 4096);
        assert_eq!(
            log.pending_bytes(),
            0,
            "a reservation forces everything pending durable"
        );
        drop(log); // crash
        let back: LogEngine<u64> = LogEngine::open(&path, cfg).unwrap();
        assert_eq!(back.load_reservation(), Some((1, 4096)));
        assert_eq!(back.get(b"a"), Some(&1), "data rode along with the sync");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn reservation_recovers_monotone_and_survives_compaction() {
        let dir = scratch_dir("resv-compact");
        let path = dir.join("store.log");
        let cfg = LogConfig {
            sync_every_records: 1,
            compact_min_bytes: 512,
            compact_garbage_ratio: 0.5,
            ..LogConfig::default()
        };
        let mut log: LogEngine<u64> = LogEngine::open(&path, cfg).unwrap();
        log.store_reservation(1, 1024);
        log.store_reservation(2, 8192);
        for round in 0..200u64 {
            for k in 0..4u8 {
                log.apply(&[k], &mut || 0, &mut |s| *s = round);
            }
        }
        assert!(log.stats().compactions > 0);
        drop(log);
        let back: LogEngine<u64> = LogEngine::open(&path, cfg).unwrap();
        assert_eq!(
            back.load_reservation(),
            Some((2, 8192)),
            "the highest reservation survives compaction"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_tail_mid_meta_record_recovers_prior_reservation() {
        let dir = scratch_dir("resv-torn");
        let path = dir.join("store.log");
        let mut log: LogEngine<u64> = LogEngine::open(&path, LogConfig::write_through()).unwrap();
        log.store_reservation(1, 100);
        log.store_reservation(2, 200);
        drop(log);
        // tear the file mid-way through the second meta record
        let bytes = std::fs::read(&path).unwrap();
        let mut first = Vec::new();
        let first_len = frame_meta(&mut first, 1, 100) as usize;
        std::fs::write(&path, &bytes[..first_len + 3]).unwrap();
        let back: LogEngine<u64> = LogEngine::open(&path, LogConfig::default()).unwrap();
        assert_eq!(back.load_reservation(), Some((1, 100)));
        assert!(back.stats().torn_tail_bytes > 0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn snapshot_is_a_detached_mem_engine() {
        let dir = scratch_dir("snap");
        let mut log: LogEngine<u64> =
            LogEngine::open(dir.join("s.log"), LogConfig::default()).unwrap();
        log.apply(b"k", &mut || 0, &mut |s| *s = 5);
        let snap = log.snapshot();
        log.apply(b"k", &mut || 0, &mut |s| *s = 6);
        assert_eq!(snap.get(b"k"), Some(&5));
        assert_eq!(snap.kind(), "mem");
        assert_eq!(log.kind(), "log");
        std::fs::remove_dir_all(dir).ok();
    }
}
