//! # storage — pluggable per-replica storage engines
//!
//! The store's protocol layer (`kvstore`) keeps every replica's per-key
//! states behind `kvstore::data::DataStore`, whose mutation doors
//! (`mutate` / `remove` / `clear`) maintain the anti-entropy index
//! incrementally. This crate supplies the layer *below* those doors:
//! a [`StorageEngine`] trait with the primitive state operations
//! (apply / remove / clear / iterate / snapshot), and two engines —
//!
//! * [`MemEngine`]: the original in-memory `BTreeMap`, zero overhead,
//!   nothing survives a crash;
//! * [`LogEngine`]: an append-only record log in the spirit of bitcask —
//!   varint-framed, checksummed records reusing the [`dvv::encode`]
//!   codecs, an in-memory key→offset index, batched group-sync with a
//!   configurable durability interval, and size-triggered compaction
//!   that rewrites live records and truncates the dead tail. Opening a
//!   log replays it (tolerating a torn final record) so a crashed
//!   replica comes back with everything it had durably synced.
//!
//! The engines are deliberately *behaviour-identical* from the protocol
//! layer's point of view: the same workload driven over a `MemEngine`-
//! and a `LogEngine`-backed replica must produce byte-identical per-key
//! states (an equivalence the kvstore recovery suite asserts).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod log;
pub mod mem;

pub use log::{scan_history, LogConfig, LogEngine, LogStats};
pub use mem::MemEngine;

use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A stored key — the same byte-string keys the store uses.
pub type Key = Vec<u8>;

/// The primitive per-key state operations a replica's storage backend
/// must provide. The anti-entropy index layer above (`DataStore`) calls
/// only through this trait, so it is backend-agnostic: whether states
/// live in a plain map or behind a durable log is invisible to the
/// protocol.
///
/// `Send` is a supertrait because engines travel with their node across
/// the threaded runtime's worker threads.
pub trait StorageEngine<S>: fmt::Debug + Send {
    /// The state stored for `key`, if any.
    fn get(&self, key: &[u8]) -> Option<&S>;

    /// Whether `key` is stored.
    fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Number of stored keys.
    fn len(&self) -> usize;

    /// Whether no keys are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mutates (inserting `init()` first if absent) the state for `key`
    /// and returns the post-mutation state. This is the single write
    /// door: a durable engine records the post-state here.
    fn apply(
        &mut self,
        key: &[u8],
        init: &mut dyn FnMut() -> S,
        mutate: &mut dyn FnMut(&mut S),
    ) -> &S;

    /// Removes `key`. Returns whether it was stored.
    fn remove(&mut self, key: &[u8]) -> bool;

    /// Drops every key.
    fn clear(&mut self);

    /// `(key, state)` pairs in key order.
    fn iter(&self) -> Box<dyn Iterator<Item = (&Key, &S)> + '_>;

    /// A detached, purely in-memory copy of the current contents (used
    /// by audits that clone a store to flush it hypothetically; the
    /// copy shares no durability with the original).
    fn snapshot(&self) -> Box<dyn StorageEngine<S>>;

    /// Forces any buffered writes to durable storage. No-op for purely
    /// in-memory engines.
    fn sync(&mut self);

    /// The dot-mint reservation `(incarnation_epoch, counter_ceiling)`
    /// this engine recovered or last stored, if any.
    ///
    /// The reservation is the storage half of the store's dot-reuse
    /// epoch guard: before minting a dot past its last reservation, a
    /// replica durably records a new counter ceiling, so a crash that
    /// loses the unsynced data tail can never roll the mint counter back
    /// below dots that already escaped to peers.
    fn load_reservation(&self) -> Option<(u64, u64)> {
        None
    }

    /// Durably records the dot-mint reservation. Unlike data appends,
    /// this **must** reach stable storage before returning regardless of
    /// the engine's group-sync cadence — the caller is about to mint
    /// dots up to `ceiling` and let them escape to peers. No-op for
    /// purely in-memory engines (which lose everything on crash anyway,
    /// and with it every escaped dot's minting replica state).
    fn store_reservation(&mut self, epoch: u64, ceiling: u64) {
        let _ = (epoch, ceiling);
    }

    /// Short stable engine name for reports ("mem", "log").
    fn kind(&self) -> &'static str;
}

/// FNV-1a 64-bit — the record checksum. Self-contained so log files
/// have a stable format independent of `std`'s hasher internals.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A fresh scratch directory under the system temp dir, unique per
/// process and call — shared helper for the crash/recovery test suites
/// (no external tempdir crate in this build environment). The caller
/// owns cleanup; leaking under `/tmp` on test failure is acceptable.
///
/// # Panics
///
/// Panics if the directory cannot be created.
#[must_use]
pub fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("storage-{}-{}-{}", tag, std::process::id(), n));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // reference vectors for FNV-1a 64
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn scratch_dirs_are_unique() {
        let a = scratch_dir("t");
        let b = scratch_dir("t");
        assert_ne!(a, b);
        std::fs::remove_dir_all(a).ok();
        std::fs::remove_dir_all(b).ok();
    }
}
