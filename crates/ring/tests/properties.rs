//! Property tests for sloppy preference lists: whatever the mix of node
//! statuses, routing must name `n` distinct routable nodes whenever that
//! many exist, never route to a down node, and every substitution must
//! stand in for a genuinely down preferred replica.

use proptest::collection::vec;
use proptest::prelude::*;

use ring::{HashRing, Membership, NodeStatus};

/// A membership scenario: `member_count` nodes, a status draw per node.
fn arb_scenario() -> impl Strategy<Value = (u32, Vec<u8>, Vec<u8>)> {
    (2u32..9, vec(0u8..4, 8), vec(any::<u8>(), 1..24))
        .prop_map(|(count, statuses, key)| (count, statuses, key))
}

fn status_from(code: u8) -> NodeStatus {
    match code {
        0 => NodeStatus::Up,
        1 => NodeStatus::Down,
        2 => NodeStatus::Joining,
        _ => NodeStatus::Leaving,
    }
}

proptest! {
    #[test]
    fn sloppy_lists_are_distinct_routable_and_substitutions_are_down(
        scenario in arb_scenario(),
        n in 1usize..5,
    ) {
        let (count, statuses, key) = scenario;
        let ring: HashRing<u32> = HashRing::with_vnodes(0..count, 16);
        let mut m = Membership::new(0..count);
        for node in 0..count {
            m.set_status(&node, status_from(statuses[node as usize % statuses.len()]));
        }
        let routable = (0..count).filter(|x| m.is_routable(x)).count();

        let (active, subs) = m.sloppy_preference_list(&ring, &key, n);

        // n distinct routable nodes whenever that many are available
        prop_assert_eq!(active.len(), n.min(routable), "short list despite capacity");
        let mut dedup = active.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), active.len(), "duplicate active node");
        for node in &active {
            prop_assert!(m.is_routable(node), "routed to non-routable {}", node);
        }

        // every substitution replaces a genuinely down preferred replica,
        // and its fallback actually serves
        let ideal = ring.preference_list(&key, n);
        for (intended, fallback) in &subs {
            prop_assert!(!m.is_routable(intended), "substituted a routable node");
            prop_assert!(ideal.contains(intended), "intended not in the ideal list");
            prop_assert!(active.contains(fallback), "fallback not active");
            prop_assert!(!ideal.contains(fallback), "fallback was already preferred");
        }

        // routable preferred replicas are always used directly
        for node in &ideal {
            if m.is_routable(node) {
                prop_assert!(active.contains(node), "skipped a routable owner");
            }
        }
    }
}
