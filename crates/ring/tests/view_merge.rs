//! Property suite for the mergeable ring view: the per-member
//! last-writer-wins merge must be a join-semilattice join — commutative,
//! associative, idempotent — and therefore convergent under arbitrary
//! delivery orders, duplication and re-merging; the derived artifacts
//! (in-ring member set, digest, rebuilt ring) must agree wherever the
//! merged states agree.

use proptest::collection::vec;
use proptest::prelude::*;

use ring::{MemberStatus, RingView};

fn status_from(code: u8) -> MemberStatus {
    match code % 4 {
        0 => MemberStatus::Up,
        1 => MemberStatus::Joining,
        2 => MemberStatus::Leaving,
        _ => MemberStatus::Removed,
    }
}

/// An arbitrary view over a small id space: per slot an optional
/// `(incarnation, status)` draw.
fn arb_view() -> impl Strategy<Value = RingView<u32>> {
    vec((0u8..5, 1u64..6, 0u8..4), 0..8).prop_map(|draws| {
        let mut view = RingView::new();
        for (node, incarnation, status) in draws {
            // later draws for the same node overwrite earlier ones — any
            // single-entry-per-member view is reachable
            view.set(u32::from(node), incarnation, status_from(status));
        }
        view
    })
}

/// A batch of announcement "deltas" plus a permutation seed.
fn arb_deltas() -> impl Strategy<Value = (Vec<RingView<u32>>, u64)> {
    (vec(arb_view(), 1..7), any::<u64>())
}

fn merged(a: &RingView<u32>, b: &RingView<u32>) -> RingView<u32> {
    let mut out = a.clone();
    out.merge(b);
    out
}

/// Deterministic permutation of indices from a seed (splitmix-style).
fn permuted<T: Clone>(items: &[T], mut seed: u64) -> Vec<T> {
    let mut out: Vec<T> = items.to_vec();
    for i in (1..out.len()).rev() {
        seed = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(0x2545_f491_4f6c_dd1d);
        let j = (seed % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

proptest! {
    #[test]
    fn merge_is_commutative(a in arb_view(), b in arb_view()) {
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_associative(a in arb_view(), b in arb_view(), c in arb_view()) {
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn merge_is_idempotent(a in arb_view(), b in arb_view()) {
        let once = merged(&a, &b);
        prop_assert_eq!(merged(&once, &b), once.clone(), "re-merging an input is a no-op");
        prop_assert_eq!(merged(&once, &a), once.clone());
        prop_assert_eq!(merged(&once, &once), once);
    }

    #[test]
    fn merge_reports_change_exactly_when_state_moves(a in arb_view(), b in arb_view()) {
        let mut m = a.clone();
        let changed = m.merge(&b);
        prop_assert_eq!(changed, m != a, "merge() must report exactly whether it changed self");
        prop_assert!(m.dominates(&a) && m.dominates(&b), "the join is an upper bound");
        prop_assert_eq!(!changed, a.dominates(&b), "no change iff self already dominated");
    }

    #[test]
    fn convergence_is_order_and_duplication_insensitive(
        batch in arb_deltas(),
        start_a in arb_view(),
        start_b in arb_view(),
    ) {
        let (deltas, seed) = batch;
        // Two replicas start from the *same* base (their own states merged
        // both ways — what one gossip exchange establishes) and then apply
        // the same announcement batch in different orders, with one side
        // seeing duplicated deliveries. They must converge exactly.
        let mut a = merged(&start_a, &start_b);
        let mut b = merged(&start_b, &start_a);
        prop_assert_eq!(&a, &b, "a two-way exchange equalises the bases");
        for d in &deltas {
            a.merge(d);
        }
        for d in permuted(&deltas, seed) {
            b.merge(&d);
            b.merge(&d); // duplicate delivery
        }
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.digest(), b.digest());
        prop_assert_eq!(a.members(), b.members());
        // the rebuilt rings route identically
        let (ra, rb) = (a.to_ring(8), b.to_ring(8));
        prop_assert_eq!(ra.nodes(), rb.nodes());
        for k in 0..20u32 {
            let key = format!("k{k}");
            prop_assert_eq!(
                ra.preference_list(key.as_bytes(), 3),
                rb.preference_list(key.as_bytes(), 3)
            );
        }
    }

    #[test]
    fn per_member_entries_follow_the_lww_order(a in arb_view(), b in arb_view()) {
        let m = merged(&a, &b);
        for (node, entry) in m.iter() {
            let from_a = a.entry(node);
            let from_b = b.entry(node);
            // the merged entry is one of the inputs' entries…
            prop_assert!(
                from_a == Some(entry) || from_b == Some(entry),
                "merge invented an entry for {:?}", node
            );
            // …and beats (or equals) both
            for source in [from_a, from_b].into_iter().flatten() {
                prop_assert!(
                    entry == source || entry.beats(source),
                    "merged entry for {:?} lost to an input", node
                );
            }
        }
    }

    #[test]
    fn version_is_monotone_under_merge(a in arb_view(), b in arb_view()) {
        let m = merged(&a, &b);
        prop_assert!(m.version() >= a.version());
        // every in-ring member of the merge is in-ring in the input that
        // supplied its winning entry
        for node in m.members() {
            let e = m.entry(&node).unwrap();
            prop_assert!(e.status.in_ring());
            prop_assert!(a.entry(&node) == Some(e) || b.entry(&node) == Some(e));
        }
    }
}
