//! # ring — consistent hashing and membership for Dynamo-style stores
//!
//! The store that hosts the paper's clocks (Riak) places keys on replicas
//! with a consistent-hashing ring and routes requests via *preference
//! lists*. This crate provides that placement substrate:
//!
//! * [`hash`]: a dependency-free 64-bit key hash,
//! * [`HashRing`]: virtual-node consistent hashing with N-replica
//!   preference lists and **ring epochs** (every membership change bumps
//!   an epoch, and [`HashRing::owned_ranges_diff`] reports exactly which
//!   key ranges changed owners — the planning substrate for live
//!   join/leave range transfer),
//! * [`Membership`]: node liveness and lifecycle tracking (up / down /
//!   joining / leaving), yielding *sloppy* preference lists (fallback
//!   nodes stand in for down primaries, the precondition for hinted
//!   handoff),
//! * [`RingView`]: a *mergeable* membership state (member →
//!   `(incarnation, status)`, last-writer-wins per member) a ring can be
//!   rebuilt from — the unit of state exchanged by gossip-based ring
//!   dissemination. Its merge is a join-semilattice join, so concurrent
//!   membership changes announced on different sides of a partition
//!   merge instead of racing.
//!
//! ```
//! use ring::{HashRing, Membership};
//!
//! let ring: HashRing<u32> = HashRing::with_vnodes([0, 1, 2, 3], 16);
//! let prefs = ring.preference_list(b"shopping-cart", 3);
//! assert_eq!(prefs.len(), 3);
//!
//! let mut members = Membership::new([0u32, 1, 2, 3]);
//! members.mark_down(&prefs[0]);
//! let (active, substituted) =
//!     members.sloppy_preference_list(&ring, b"shopping-cart", 3);
//! assert_eq!(active.len(), 3, "a fallback stands in for the down node");
//! assert_eq!(substituted.len(), 1);
//! assert_eq!(substituted[0].0, prefs[0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod hash;
mod membership;
mod ring_impl;
mod view;

pub use hash::hash_key;
pub use membership::{Membership, NodeStatus};
pub use ring_impl::{arc_index, HashRing, RangeDiff};
pub use view::{MemberEntry, MemberStatus, RingView};
