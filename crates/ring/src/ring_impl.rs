//! [`HashRing`]: virtual-node consistent hashing.

use std::collections::BTreeMap;
use std::fmt::Debug;

use crate::hash::{hash_key, hash_with_seed};

/// A consistent-hashing ring with virtual nodes.
///
/// Each physical node owns `vnodes` tokens on a 64-bit ring; a key is
/// served by the first `n` *distinct* nodes encountered walking clockwise
/// from the key's hash — its **preference list**. Virtual nodes smooth the
/// load distribution and bound the data movement when membership changes,
/// exactly as in Dynamo/Riak.
///
/// # Examples
///
/// ```
/// use ring::HashRing;
/// let ring: HashRing<&str> = HashRing::with_vnodes(["a", "b", "c"], 32);
/// let prefs = ring.preference_list(b"k", 2);
/// assert_eq!(prefs.len(), 2);
/// assert_ne!(prefs[0], prefs[1]);
/// ```
#[derive(Clone, Debug)]
pub struct HashRing<N: Ord> {
    tokens: BTreeMap<u64, N>,
    nodes: Vec<N>,
    vnodes: u32,
}

impl<N: Clone + Ord + Debug> HashRing<N> {
    /// Default number of virtual nodes per physical node.
    pub const DEFAULT_VNODES: u32 = 64;

    /// Creates a ring over `nodes` with the default virtual-node count.
    #[must_use]
    pub fn new(nodes: impl IntoIterator<Item = N>) -> Self {
        Self::with_vnodes(nodes, Self::DEFAULT_VNODES)
    }

    /// Creates a ring with `vnodes` tokens per node.
    ///
    /// # Panics
    ///
    /// Panics if `vnodes` is zero.
    #[must_use]
    pub fn with_vnodes(nodes: impl IntoIterator<Item = N>, vnodes: u32) -> Self {
        assert!(vnodes > 0, "a node must own at least one token");
        let mut ring = HashRing {
            tokens: BTreeMap::new(),
            nodes: Vec::new(),
            vnodes,
        };
        for n in nodes {
            ring.add_node(n);
        }
        ring
    }

    /// Adds a node (idempotent).
    pub fn add_node(&mut self, node: N) {
        if self.nodes.contains(&node) {
            return;
        }
        for v in 0..self.vnodes {
            let token = hash_with_seed(format!("{node:?}").as_bytes(), u64::from(v));
            self.tokens.insert(token, node.clone());
        }
        self.nodes.push(node);
        self.nodes.sort();
    }

    /// Removes a node and its tokens. Returns whether it was present.
    pub fn remove_node(&mut self, node: &N) -> bool {
        let present = self.nodes.iter().any(|n| n == node);
        if present {
            self.tokens.retain(|_, n| n != node);
            self.nodes.retain(|n| n != node);
        }
        present
    }

    /// All member nodes in sorted order.
    #[must_use]
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Number of member nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The first `n` distinct nodes clockwise from the key's position.
    ///
    /// Returns fewer than `n` nodes only when the ring has fewer members.
    #[must_use]
    pub fn preference_list(&self, key: &[u8], n: usize) -> Vec<N> {
        let want = n.min(self.nodes.len());
        let mut out: Vec<N> = Vec::with_capacity(want);
        if want == 0 {
            return out;
        }
        let start = hash_key(key);
        for (_, node) in self.tokens.range(start..).chain(self.tokens.range(..start)) {
            if !out.contains(node) {
                out.push(node.clone());
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }

    /// The primary (first preference) node for a key, if any.
    #[must_use]
    pub fn primary(&self, key: &[u8]) -> Option<N> {
        self.preference_list(key, 1).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Map;

    #[test]
    fn preference_list_has_distinct_nodes() {
        let ring: HashRing<u32> = HashRing::with_vnodes(0..5, 16);
        for i in 0..100 {
            let prefs = ring.preference_list(format!("k{i}").as_bytes(), 3);
            assert_eq!(prefs.len(), 3);
            let mut sorted = prefs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "duplicates in {prefs:?}");
        }
    }

    #[test]
    fn preference_list_is_stable() {
        let ring: HashRing<u32> = HashRing::with_vnodes(0..5, 16);
        assert_eq!(
            ring.preference_list(b"stable", 3),
            ring.preference_list(b"stable", 3)
        );
    }

    #[test]
    fn asking_for_more_than_members_caps() {
        let ring: HashRing<u32> = HashRing::with_vnodes(0..2, 8);
        assert_eq!(ring.preference_list(b"k", 5).len(), 2);
        let empty: HashRing<u32> = HashRing::with_vnodes(std::iter::empty(), 8);
        assert!(empty.preference_list(b"k", 3).is_empty());
        assert!(empty.primary(b"k").is_none());
        assert!(empty.is_empty());
    }

    #[test]
    fn add_node_is_idempotent() {
        let mut ring: HashRing<u32> = HashRing::with_vnodes([1, 2], 8);
        ring.add_node(1);
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.nodes(), &[1, 2]);
    }

    #[test]
    fn remove_node_reroutes_only_its_keys() {
        let mut ring: HashRing<u32> = HashRing::with_vnodes(0..4, 32);
        let before: Map<String, u32> = (0..500)
            .map(|i| {
                let k = format!("k{i}");
                let p = ring.primary(k.as_bytes()).unwrap();
                (k, p)
            })
            .collect();
        assert!(ring.remove_node(&3));
        assert!(!ring.remove_node(&3), "second removal is a no-op");
        let mut moved = 0;
        for (k, old_primary) in &before {
            let new_primary = ring.primary(k.as_bytes()).unwrap();
            if *old_primary != 3 {
                assert_eq!(
                    new_primary, *old_primary,
                    "key {k} moved although its primary stayed up"
                );
            } else {
                moved += 1;
            }
        }
        assert!(moved > 0, "node 3 owned some keys");
    }

    #[test]
    fn load_is_roughly_balanced() {
        let ring: HashRing<u32> = HashRing::new(0..4);
        let mut counts: Map<u32, u32> = Map::new();
        for i in 0..4000 {
            let p = ring.primary(format!("key-{i}").as_bytes()).unwrap();
            *counts.entry(p).or_default() += 1;
        }
        for (node, c) in &counts {
            assert!(
                (400..=1800).contains(c),
                "node {node} owns {c} of 4000 keys — badly balanced"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn zero_vnodes_rejected() {
        let _: HashRing<u32> = HashRing::with_vnodes([1], 0);
    }
}
