//! [`HashRing`]: virtual-node consistent hashing with ring epochs and an
//! arc-indexed preference-list cache.

use std::cell::OnceCell;
use std::collections::BTreeMap;
use std::fmt::Debug;

use crate::hash::{hash_key, hash_with_seed};

/// Index of the arc containing ring position `point`, for an arc
/// partition given by its sorted upper boundaries (a ring's token
/// points, see [`HashRing::arc_bounds`]): arc `i > 0` covers
/// `(bounds[i-1], bounds[i]]` and arc 0 the wrapping remainder. Returns
/// 0 for an empty partition (the conventional catch-all arc).
///
/// This is the one place the boundary/wrap convention lives — the
/// ring's own lookups and any external per-arc index (e.g. the store's
/// partitioned AAE summaries) must bucket identically or per-arc data
/// would silently disagree with [`HashRing::arc_prefs`].
#[must_use]
pub fn arc_index(bounds: &[u64], point: u64) -> usize {
    match bounds.partition_point(|b| *b < point) {
        i if i == bounds.len() => 0,
        i => i,
    }
}

/// The precomputed arc table of a ring: the token set partitions the
/// 64-bit circle into arcs on which the clockwise distinct-node walk —
/// and therefore every preference list — is constant. One full walk is
/// stored per arc, so a lookup is a binary search plus a slice read
/// instead of a `BTreeMap` range walk with linear dedup.
///
/// Built lazily on first lookup and dropped by every membership change
/// (ring merges rebuild the ring, so invalidation happens exactly on
/// view changes).
#[derive(Clone, Debug)]
struct ArcTable<N> {
    /// Arc upper boundaries: the token points, sorted ascending. Arc `i`
    /// covers every point whose clockwise walk starts at `bounds[i]` —
    /// `(bounds[i-1], bounds[i]]` for `i > 0`, and the wrapping arc
    /// `(bounds.last(), bounds[0]]` for `i == 0`.
    bounds: Vec<u64>,
    /// All per-arc walks, concatenated (flat storage: one allocation for
    /// the whole table instead of one small `Vec` per arc).
    walk_nodes: Vec<N>,
    /// `walk_nodes[offsets[i]..offsets[i + 1]]` is arc `i`'s walk: all
    /// distinct nodes in clockwise token order starting at `bounds[i]` —
    /// any `n`-replica preference list is a prefix of it.
    offsets: Vec<u32>,
}

impl<N: Clone + Ord> ArcTable<N> {
    fn build(tokens: &BTreeMap<u64, N>, nodes: &[N]) -> Self {
        let bounds: Vec<u64> = tokens.keys().copied().collect();
        let owners: Vec<&N> = tokens.values().collect();
        let t = bounds.len();
        let m = nodes.len();
        let mut walk_nodes: Vec<N> = Vec::with_capacity(t * m);
        let mut offsets: Vec<u32> = Vec::with_capacity(t + 1);
        offsets.push(0);
        // generation-stamped seen set: no per-arc reset
        let mut seen = vec![u32::MAX; m];
        for (i, _) in bounds.iter().enumerate() {
            let mut found = 0usize;
            for j in 0..t {
                let owner = owners[(i + j) % t];
                let oi = nodes
                    .binary_search(owner)
                    .expect("every token owner is a member");
                if seen[oi] != i as u32 {
                    seen[oi] = i as u32;
                    walk_nodes.push(owner.clone());
                    found += 1;
                    if found == m {
                        break;
                    }
                }
            }
            offsets.push(walk_nodes.len() as u32);
        }
        ArcTable {
            bounds,
            walk_nodes,
            offsets,
        }
    }

    /// Index of the arc containing ring position `point`.
    fn arc_of(&self, point: u64) -> usize {
        debug_assert!(!self.bounds.is_empty());
        arc_index(&self.bounds, point)
    }

    fn walk(&self, idx: usize) -> &[N] {
        &self.walk_nodes[self.offsets[idx] as usize..self.offsets[idx + 1] as usize]
    }

    fn walk_at(&self, point: u64) -> &[N] {
        if self.bounds.is_empty() {
            return &[];
        }
        self.walk(self.arc_of(point))
    }
}

/// A key range on the ring together with its replica sets before and
/// after a membership change, as produced by
/// [`HashRing::owned_ranges_diff`].
///
/// The range covers every ring position `h` with `start < h <= end`,
/// wrapping around zero when `start > end`; when `start == end` the range
/// is the whole ring (a one-boundary ring).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangeDiff<N> {
    /// Exclusive lower boundary of the arc.
    pub start: u64,
    /// Inclusive upper boundary of the arc.
    pub end: u64,
    /// The preference list of the arc before the change.
    pub old_owners: Vec<N>,
    /// The preference list of the arc after the change.
    pub new_owners: Vec<N>,
}

impl<N> RangeDiff<N> {
    /// Whether ring position `h` falls inside this arc.
    #[must_use]
    pub fn contains(&self, h: u64) -> bool {
        if self.start == self.end {
            true // single-boundary ring: the arc is the full circle
        } else if self.start < self.end {
            h > self.start && h <= self.end
        } else {
            h > self.start || h <= self.end
        }
    }

    /// Whether `key` hashes inside this arc.
    #[must_use]
    pub fn contains_key(&self, key: &[u8]) -> bool {
        self.contains(hash_key(key))
    }
}

/// A consistent-hashing ring with virtual nodes.
///
/// Each physical node owns `vnodes` tokens on a 64-bit ring; a key is
/// served by the first `n` *distinct* nodes encountered walking clockwise
/// from the key's hash — its **preference list**. Virtual nodes smooth the
/// load distribution and bound the data movement when membership changes,
/// exactly as in Dynamo/Riak.
///
/// Every membership change ([`HashRing::add_node`],
/// [`HashRing::remove_node`]) bumps the ring's **epoch**, so replicas and
/// clients can detect stale routing views and resynchronise.
///
/// # Examples
///
/// ```
/// use ring::HashRing;
/// let ring: HashRing<&str> = HashRing::with_vnodes(["a", "b", "c"], 32);
/// let prefs = ring.preference_list(b"k", 2);
/// assert_eq!(prefs.len(), 2);
/// assert_ne!(prefs[0], prefs[1]);
/// assert_eq!(ring.epoch(), 3, "one epoch per membership change");
/// ```
#[derive(Clone, Debug)]
pub struct HashRing<N: Ord> {
    tokens: BTreeMap<u64, N>,
    nodes: Vec<N>,
    vnodes: u32,
    epoch: u64,
    /// Lazily built arc → preference-walk table; reset by every
    /// membership change so it can never serve a stale walk.
    arcs: OnceCell<ArcTable<N>>,
}

impl<N: Clone + Ord + Debug> HashRing<N> {
    /// Default number of virtual nodes per physical node.
    pub const DEFAULT_VNODES: u32 = 64;

    /// Creates a ring over `nodes` with the default virtual-node count.
    #[must_use]
    pub fn new(nodes: impl IntoIterator<Item = N>) -> Self {
        Self::with_vnodes(nodes, Self::DEFAULT_VNODES)
    }

    /// Creates a ring with `vnodes` tokens per node.
    ///
    /// # Panics
    ///
    /// Panics if `vnodes` is zero.
    #[must_use]
    pub fn with_vnodes(nodes: impl IntoIterator<Item = N>, vnodes: u32) -> Self {
        assert!(vnodes > 0, "a node must own at least one token");
        let mut ring = HashRing {
            tokens: BTreeMap::new(),
            nodes: Vec::new(),
            vnodes,
            epoch: 0,
            arcs: OnceCell::new(),
        };
        for n in nodes {
            ring.add_node(n);
        }
        ring
    }

    /// Rebuilds the ring a given member set and epoch describe.
    ///
    /// Token placement is a pure function of the member *set* (members are
    /// sorted before placement), so every node that learns `(members,
    /// epoch)` — e.g. from a membership announcement — reconstructs an
    /// identical ring.
    #[must_use]
    pub fn from_members(members: impl IntoIterator<Item = N>, vnodes: u32, epoch: u64) -> Self {
        let mut members: Vec<N> = members.into_iter().collect();
        members.sort();
        members.dedup();
        let mut ring = Self::with_vnodes(members, vnodes);
        ring.epoch = epoch;
        ring
    }

    /// The ring's membership epoch: bumped once per effective
    /// [`HashRing::add_node`] / [`HashRing::remove_node`].
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Virtual nodes per physical node.
    #[must_use]
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// Adds a node (idempotent; a no-op does not bump the epoch).
    pub fn add_node(&mut self, node: N) {
        if self.nodes.contains(&node) {
            return;
        }
        for v in 0..self.vnodes {
            // Probe for a free token: a raw `insert` would silently stomp
            // another node's vnode on a (rare but possible) 64-bit hash
            // collision, and removing the stomping node later would drop
            // the stomped node's coverage entirely.
            let mut attempt: u64 = 0;
            loop {
                let seed = u64::from(v) | (attempt << 32);
                let token = hash_with_seed(format!("{node:?}").as_bytes(), seed);
                if let std::collections::btree_map::Entry::Vacant(slot) = self.tokens.entry(token) {
                    slot.insert(node.clone());
                    break;
                }
                attempt += 1;
            }
        }
        self.nodes.push(node);
        self.nodes.sort();
        self.epoch += 1;
        self.arcs = OnceCell::new();
    }

    /// Removes a node and its tokens. Returns whether it was present (the
    /// epoch is bumped only when it was).
    pub fn remove_node(&mut self, node: &N) -> bool {
        let present = self.nodes.iter().any(|n| n == node);
        if present {
            self.tokens.retain(|_, n| n != node);
            self.nodes.retain(|n| n != node);
            self.epoch += 1;
            self.arcs = OnceCell::new();
        }
        present
    }

    /// All member nodes in sorted order.
    #[must_use]
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Number of member nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The lazily built arc table (see [`ArcTable`]).
    fn arc_table(&self) -> &ArcTable<N> {
        self.arcs
            .get_or_init(|| ArcTable::build(&self.tokens, &self.nodes))
    }

    /// The first `n` distinct nodes clockwise from the key's position.
    ///
    /// Returns fewer than `n` nodes only when the ring has fewer members.
    #[must_use]
    pub fn preference_list(&self, key: &[u8], n: usize) -> Vec<N> {
        self.preference_list_at(hash_key(key), n)
    }

    /// The first `n` distinct nodes clockwise from ring position `point`
    /// (inclusive) — the preference list of any key hashing to `point`.
    ///
    /// Served from the arc cache: a binary search plus a slice clone.
    #[must_use]
    pub fn preference_list_at(&self, point: u64, n: usize) -> Vec<N> {
        let walk = self.arc_table().walk_at(point);
        walk[..n.min(walk.len())].to_vec()
    }

    /// Reference implementation of [`HashRing::preference_list_at`]: the
    /// uncached clockwise `BTreeMap` range walk with linear dedup. Kept
    /// for the cache-equivalence property tests and as the pre-cache
    /// baseline in the AAE benchmarks; protocol paths use the cached
    /// variant.
    #[must_use]
    pub fn walk_preference_list_at(&self, point: u64, n: usize) -> Vec<N> {
        let want = n.min(self.nodes.len());
        let mut out: Vec<N> = Vec::with_capacity(want);
        if want == 0 {
            return out;
        }
        for (_, node) in self.tokens.range(point..).chain(self.tokens.range(..point)) {
            if !out.contains(node) {
                out.push(node.clone());
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }

    /// The full distinct-node walk for `key`: every member, in preference
    /// order. Any `n`-replica preference list is a prefix of this slice —
    /// borrowed from the arc cache, so sloppy-quorum routing allocates
    /// nothing to consult it.
    #[must_use]
    pub fn full_walk(&self, key: &[u8]) -> &[N] {
        self.full_walk_at(hash_key(key))
    }

    /// The full distinct-node walk from ring position `point` (see
    /// [`HashRing::full_walk`]).
    #[must_use]
    pub fn full_walk_at(&self, point: u64) -> &[N] {
        self.arc_table().walk_at(point)
    }

    /// Whether `node` is among the first `n` preferences at `point` —
    /// the allocation-free form of `preference_list_at(..).contains(..)`.
    #[must_use]
    pub fn preference_list_contains(&self, point: u64, n: usize, node: &N) -> bool {
        let walk = self.arc_table().walk_at(point);
        walk[..n.min(walk.len())].contains(node)
    }

    /// The primary (first preference) node for a key, if any.
    #[must_use]
    pub fn primary(&self, key: &[u8]) -> Option<N> {
        self.primary_at(hash_key(key)).cloned()
    }

    /// The primary node at ring position `point`, if any — borrowed from
    /// the arc cache, no allocation.
    #[must_use]
    pub fn primary_at(&self, point: u64) -> Option<&N> {
        self.arc_table().walk_at(point).first()
    }

    /// Arc boundaries of this ring: the token points, sorted ascending.
    /// Arc `i` covers `(bounds[i-1], bounds[i]]` (arc 0 wraps); every
    /// preference list is constant on an arc. Ownership-partitioned AAE
    /// keeps one summary per arc, keyed by this index space.
    #[must_use]
    pub fn arc_bounds(&self) -> &[u64] {
        &self.arc_table().bounds
    }

    /// Number of arcs (equals the token count; zero for an empty ring).
    #[must_use]
    pub fn arc_count(&self) -> usize {
        self.arc_table().bounds.len()
    }

    /// The first `min(n, members)` preferences shared by every point of
    /// arc `idx` (an index into [`HashRing::arc_bounds`]).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn arc_prefs(&self, idx: usize, n: usize) -> &[N] {
        let walk = self.arc_table().walk(idx);
        &walk[..n.min(walk.len())]
    }

    /// The ring's token points in ascending order — equal to
    /// [`HashRing::arc_bounds`] but read straight off the token map, so
    /// callers that only need the partition (not the walks) don't force
    /// the arc table to build.
    pub fn token_points(&self) -> impl Iterator<Item = u64> + '_ {
        self.tokens.keys().copied()
    }

    /// The key ranges whose `n`-replica preference list differs between
    /// `old` and `new` — exactly the `(key-range, replica set)` pairs a
    /// membership change moved.
    ///
    /// The union of both rings' tokens partitions the ring into arcs on
    /// which both preference lists are constant; one [`RangeDiff`] is
    /// emitted per arc whose old and new owner lists differ. Joining
    /// nodes use this to learn which ranges to stream from current
    /// owners; leaving nodes use it to plan their drain.
    #[must_use]
    pub fn owned_ranges_diff(old: &Self, new: &Self, n: usize) -> Vec<RangeDiff<N>> {
        let mut bounds: Vec<u64> = old
            .tokens
            .keys()
            .chain(new.tokens.keys())
            .copied()
            .collect();
        bounds.sort_unstable();
        bounds.dedup();
        let Some(&last) = bounds.last() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut prev = last;
        for &end in &bounds {
            // No token of either ring lies strictly inside (prev, end], so
            // every position in the arc shares the walk starting at `end`.
            let old_owners = old.preference_list_at(end, n);
            let new_owners = new.preference_list_at(end, n);
            if old_owners != new_owners {
                out.push(RangeDiff {
                    start: prev,
                    end,
                    old_owners,
                    new_owners,
                });
            }
            prev = end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Map;

    #[test]
    fn preference_list_has_distinct_nodes() {
        let ring: HashRing<u32> = HashRing::with_vnodes(0..5, 16);
        for i in 0..100 {
            let prefs = ring.preference_list(format!("k{i}").as_bytes(), 3);
            assert_eq!(prefs.len(), 3);
            let mut sorted = prefs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "duplicates in {prefs:?}");
        }
    }

    #[test]
    fn preference_list_is_stable() {
        let ring: HashRing<u32> = HashRing::with_vnodes(0..5, 16);
        assert_eq!(
            ring.preference_list(b"stable", 3),
            ring.preference_list(b"stable", 3)
        );
    }

    #[test]
    fn asking_for_more_than_members_caps() {
        let ring: HashRing<u32> = HashRing::with_vnodes(0..2, 8);
        assert_eq!(ring.preference_list(b"k", 5).len(), 2);
        let empty: HashRing<u32> = HashRing::with_vnodes(std::iter::empty(), 8);
        assert!(empty.preference_list(b"k", 3).is_empty());
        assert!(empty.primary(b"k").is_none());
        assert!(empty.is_empty());
    }

    #[test]
    fn add_node_is_idempotent() {
        let mut ring: HashRing<u32> = HashRing::with_vnodes([1, 2], 8);
        let epoch = ring.epoch();
        ring.add_node(1);
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.nodes(), &[1, 2]);
        assert_eq!(ring.epoch(), epoch, "no-op add must not bump the epoch");
    }

    #[test]
    fn remove_node_reroutes_only_its_keys() {
        let mut ring: HashRing<u32> = HashRing::with_vnodes(0..4, 32);
        let before: Map<String, u32> = (0..500)
            .map(|i| {
                let k = format!("k{i}");
                let p = ring.primary(k.as_bytes()).unwrap();
                (k, p)
            })
            .collect();
        assert!(ring.remove_node(&3));
        assert!(!ring.remove_node(&3), "second removal is a no-op");
        let mut moved = 0;
        for (k, old_primary) in &before {
            let new_primary = ring.primary(k.as_bytes()).unwrap();
            if *old_primary != 3 {
                assert_eq!(
                    new_primary, *old_primary,
                    "key {k} moved although its primary stayed up"
                );
            } else {
                moved += 1;
            }
        }
        assert!(moved > 0, "node 3 owned some keys");
    }

    #[test]
    fn load_is_roughly_balanced() {
        let ring: HashRing<u32> = HashRing::new(0..4);
        let mut counts: Map<u32, u32> = Map::new();
        for i in 0..4000 {
            let p = ring.primary(format!("key-{i}").as_bytes()).unwrap();
            *counts.entry(p).or_default() += 1;
        }
        for (node, c) in &counts {
            assert!(
                (400..=1800).contains(c),
                "node {node} owns {c} of 4000 keys — badly balanced"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn zero_vnodes_rejected() {
        let _: HashRing<u32> = HashRing::with_vnodes([1], 0);
    }

    #[test]
    fn epochs_count_membership_changes() {
        let mut ring: HashRing<u32> = HashRing::with_vnodes(0..3, 8);
        assert_eq!(ring.epoch(), 3, "one bump per constructed member");
        ring.add_node(7);
        assert_eq!(ring.epoch(), 4);
        assert!(ring.remove_node(&0));
        assert_eq!(ring.epoch(), 5);
        assert!(!ring.remove_node(&0));
        assert_eq!(ring.epoch(), 5, "failed removal must not bump");
    }

    #[test]
    fn from_members_is_order_independent_and_matches_incremental() {
        let a: HashRing<u32> = HashRing::from_members([3, 1, 2], 16, 9);
        let b: HashRing<u32> = HashRing::from_members([2, 3, 1], 16, 9);
        assert_eq!(a.tokens, b.tokens);
        assert_eq!(a.nodes(), b.nodes());
        assert_eq!(a.epoch(), 9);

        // incremental growth from the same sorted set places identically
        let mut inc: HashRing<u32> = HashRing::with_vnodes([1u32, 2], 16);
        inc.add_node(3);
        assert_eq!(inc.tokens, a.tokens);
    }

    #[test]
    fn token_collision_probes_instead_of_stomping() {
        let mut ring: HashRing<u32> = HashRing::with_vnodes([1], 4);
        // Occupy node 2's first-choice token with node 1's ownership,
        // simulating a 64-bit hash collision between the two nodes.
        let stolen = hash_with_seed(format!("{:?}", 2u32).as_bytes(), 0);
        assert!(
            ring.tokens.insert(stolen, 1).is_none(),
            "the forced token must not already exist"
        );
        ring.add_node(2);
        // Node 2 still placed all its vnodes (one probed to a new seed).
        assert_eq!(ring.tokens.values().filter(|n| **n == 2).count(), 4);
        assert_eq!(
            ring.tokens.get(&stolen),
            Some(&1),
            "occupant keeps its token"
        );
        // Removing the occupant must leave node 2's coverage intact.
        assert!(ring.remove_node(&1));
        assert_eq!(ring.tokens.values().filter(|n| **n == 2).count(), 4);
        assert_eq!(ring.preference_list(b"k", 1), vec![2]);
    }

    #[test]
    fn preference_list_at_matches_key_walks() {
        let ring: HashRing<u32> = HashRing::with_vnodes(0..5, 16);
        for i in 0..50 {
            let key = format!("k{i}");
            assert_eq!(
                ring.preference_list(key.as_bytes(), 3),
                ring.preference_list_at(hash_key(key.as_bytes()), 3)
            );
        }
    }

    #[test]
    fn owned_ranges_diff_covers_exactly_the_moved_keys() {
        let old: HashRing<u32> = HashRing::with_vnodes(0..4, 16);
        let mut new = old.clone();
        new.add_node(4);
        let diffs = HashRing::owned_ranges_diff(&old, &new, 3);
        assert!(!diffs.is_empty(), "adding a node must move some ranges");
        for d in &diffs {
            assert_ne!(d.old_owners, d.new_owners);
            assert!(
                d.new_owners.contains(&4) || d.old_owners.len() != d.new_owners.len(),
                "every moved arc involves the joiner: {d:?}"
            );
        }
        // Ground truth: per-key preference lists changed iff some diff
        // arc contains the key — checked over many keys.
        for i in 0..500 {
            let key = format!("key-{i}");
            let h = hash_key(key.as_bytes());
            let moved =
                old.preference_list(key.as_bytes(), 3) != new.preference_list(key.as_bytes(), 3);
            let in_diff = diffs.iter().any(|d| d.contains(h));
            assert_eq!(moved, in_diff, "key {key} misclassified");
            if moved {
                let d = diffs.iter().find(|d| d.contains(h)).unwrap();
                assert_eq!(d.old_owners, old.preference_list(key.as_bytes(), 3));
                assert_eq!(d.new_owners, new.preference_list(key.as_bytes(), 3));
            }
        }
    }

    #[test]
    fn cached_walks_match_the_reference_implementation() {
        // the arc cache must be observationally identical to the uncached
        // BTreeMap walk, for every n, at token boundaries and wrap points
        let ring: HashRing<u32> = HashRing::with_vnodes(0..6, 16);
        let mut points: Vec<u64> = (0..300)
            .map(|i| hash_key(format!("pt{i}").as_bytes()))
            .collect();
        points.extend(ring.arc_bounds().to_vec()); // exact boundaries
        points.extend(ring.arc_bounds().iter().map(|b| b.wrapping_add(1)));
        points.push(0);
        points.push(u64::MAX);
        for p in points {
            for n in 0..8 {
                assert_eq!(
                    ring.preference_list_at(p, n),
                    ring.walk_preference_list_at(p, n),
                    "cache diverged at point {p} n {n}"
                );
            }
            let full = ring.full_walk_at(p);
            assert_eq!(full.len(), 6, "full walk names every member");
            assert_eq!(ring.primary_at(p), full.first());
            for n in 1..7 {
                for node in 0..6 {
                    assert_eq!(
                        ring.preference_list_contains(p, n, &node),
                        full[..n].contains(&node)
                    );
                }
            }
        }
    }

    #[test]
    fn arc_cache_invalidates_on_membership_change() {
        let mut ring: HashRing<u32> = HashRing::with_vnodes(0..3, 8);
        let p = hash_key(b"probe");
        let before = ring.preference_list_at(p, 3); // builds the cache
        ring.add_node(9);
        assert_eq!(
            ring.preference_list_at(p, 4),
            ring.walk_preference_list_at(p, 4),
            "stale cache survived add_node"
        );
        assert!(ring.full_walk_at(p).contains(&9));
        ring.remove_node(&9);
        assert_eq!(ring.preference_list_at(p, 3), before);
        assert_eq!(ring.arc_count(), 3 * 8);
    }

    #[test]
    fn arc_prefs_agree_with_point_lookups() {
        let ring: HashRing<u32> = HashRing::with_vnodes(0..5, 16);
        let bounds = ring.arc_bounds().to_vec();
        assert_eq!(bounds.len(), ring.arc_count());
        for (i, b) in bounds.iter().enumerate() {
            // the arc's upper boundary point is inside the arc
            assert_eq!(ring.arc_prefs(i, 3), &ring.preference_list_at(*b, 3));
        }
        let empty: HashRing<u32> = HashRing::with_vnodes(std::iter::empty(), 8);
        assert_eq!(empty.arc_count(), 0);
        assert!(empty.full_walk_at(7).is_empty());
        assert!(empty.primary_at(7).is_none());
        assert!(!empty.preference_list_contains(7, 3, &1));
    }

    #[test]
    fn owned_ranges_diff_identical_rings_is_empty() {
        let ring: HashRing<u32> = HashRing::with_vnodes(0..4, 16);
        assert!(HashRing::owned_ranges_diff(&ring, &ring, 3).is_empty());
        let empty: HashRing<u32> = HashRing::with_vnodes(std::iter::empty(), 8);
        assert!(HashRing::owned_ranges_diff(&empty, &empty, 3).is_empty());
    }

    #[test]
    fn range_diff_contains_handles_wrap_and_full_circle() {
        let wrap = RangeDiff::<u32> {
            start: u64::MAX - 10,
            end: 10,
            old_owners: vec![],
            new_owners: vec![],
        };
        assert!(wrap.contains(5));
        assert!(wrap.contains(u64::MAX));
        assert!(!wrap.contains(11));
        assert!(!wrap.contains(u64::MAX - 10), "start is exclusive");
        let full = RangeDiff::<u32> {
            start: 42,
            end: 42,
            old_owners: vec![],
            new_owners: vec![],
        };
        assert!(full.contains(0));
        assert!(full.contains(42));
        assert!(full.contains(u64::MAX));
    }
}
