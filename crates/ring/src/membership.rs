//! [`Membership`]: node liveness and sloppy preference lists.

use std::collections::BTreeMap;
use std::fmt::Debug;

use crate::ring_impl::HashRing;

/// Liveness / lifecycle status of a member node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeStatus {
    /// Accepting requests.
    Up,
    /// Suspected or confirmed failed; skipped by routing.
    Down,
    /// Joining the ring: routable (it owns ranges and accepts writes) but
    /// still streaming its newly-owned key ranges from current owners.
    Joining,
    /// Leaving the ring: out of every preference list of the new ring
    /// epoch, still reachable while it drains its ranges to successors.
    Leaving,
}

impl NodeStatus {
    /// Whether a node in this state can serve requests.
    #[must_use]
    pub fn is_routable(self) -> bool {
        !matches!(self, NodeStatus::Down)
    }
}

/// Tracks which members of the cluster are currently believed alive, and
/// derives routing decisions from the ring accordingly.
///
/// When a preferred replica is down, Dynamo-style stores route the request
/// to the next node on the ring instead — a *sloppy quorum*. The fallback
/// carries a *hint* naming the intended node so it can hand the data off
/// when the node recovers; [`Membership::sloppy_preference_list`] returns
/// exactly those `(intended, fallback)` pairs.
///
/// Besides `Up`/`Down`, elastic membership adds the transitional
/// [`NodeStatus::Joining`] and [`NodeStatus::Leaving`] states: both are
/// routable (a joiner owns ranges immediately; a leaver stays reachable
/// while draining), but neither is a target for anti-entropy or handoff,
/// which use [`Membership::is_up`].
#[derive(Clone, Debug)]
pub struct Membership<N: Ord> {
    status: BTreeMap<N, NodeStatus>,
}

impl<N: Clone + Ord + Debug> Membership<N> {
    /// Creates a membership view with every node up.
    #[must_use]
    pub fn new(nodes: impl IntoIterator<Item = N>) -> Self {
        Membership {
            status: nodes.into_iter().map(|n| (n, NodeStatus::Up)).collect(),
        }
    }

    /// Marks a node down. Unknown nodes are inserted as down.
    pub fn mark_down(&mut self, node: &N) {
        self.status.insert(node.clone(), NodeStatus::Down);
    }

    /// Marks a node up. Unknown nodes are inserted as up.
    pub fn mark_up(&mut self, node: &N) {
        self.status.insert(node.clone(), NodeStatus::Up);
    }

    /// Sets a node's lifecycle status explicitly (inserting it if new).
    pub fn set_status(&mut self, node: &N, status: NodeStatus) {
        self.status.insert(node.clone(), status);
    }

    /// The node's current status, if it is a member.
    #[must_use]
    pub fn status(&self, node: &N) -> Option<NodeStatus> {
        self.status.get(node).copied()
    }

    /// Forgets a node entirely (it left the cluster). Returns whether it
    /// was a member.
    pub fn remove(&mut self, node: &N) -> bool {
        self.status.remove(node).is_some()
    }

    /// Reconciles the member set with an authoritative list (e.g. from a
    /// ring-epoch announcement): unknown members are inserted as up,
    /// members absent from the list are forgotten, and known members keep
    /// their current status.
    pub fn sync_members(&mut self, members: &[N]) {
        self.status.retain(|n, _| members.contains(n));
        for m in members {
            self.status.entry(m.clone()).or_insert(NodeStatus::Up);
        }
    }

    /// Whether the node is currently believed up (unknown ⇒ down).
    #[must_use]
    pub fn is_up(&self, node: &N) -> bool {
        matches!(self.status.get(node), Some(NodeStatus::Up))
    }

    /// Whether the node can serve requests: up, joining, or leaving
    /// (unknown ⇒ no).
    #[must_use]
    pub fn is_routable(&self, node: &N) -> bool {
        self.status.get(node).is_some_and(|s| s.is_routable())
    }

    /// Nodes currently up, in sorted order.
    #[must_use]
    pub fn up_nodes(&self) -> Vec<N> {
        self.status
            .iter()
            .filter(|(_, s)| **s == NodeStatus::Up)
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// All members regardless of status, in sorted order.
    #[must_use]
    pub fn members(&self) -> Vec<N> {
        self.status.keys().cloned().collect()
    }

    /// Number of members regardless of status.
    #[must_use]
    pub fn len(&self) -> usize {
        self.status.len()
    }

    /// Whether there are no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.status.is_empty()
    }

    /// The first `n` *routable* nodes for `key`, plus the substitutions
    /// made: each `(intended, fallback)` pair records a down preferred
    /// replica and the extra node standing in for it (the hinted-handoff
    /// target and holder, respectively).
    ///
    /// Returns fewer than `n` active nodes when fewer are routable.
    #[must_use]
    pub fn sloppy_preference_list(
        &self,
        ring: &HashRing<N>,
        key: &[u8],
        n: usize,
    ) -> (Vec<N>, Vec<(N, N)>) {
        self.sloppy_preference_list_at(ring, crate::hash::hash_key(key), n)
    }

    /// [`Membership::sloppy_preference_list`] for a precomputed ring
    /// position — lets callers that cache their keys' hash points route
    /// without rehashing. The extended walk is borrowed from the ring's
    /// arc cache, so consulting it allocates nothing.
    #[must_use]
    pub fn sloppy_preference_list_at(
        &self,
        ring: &HashRing<N>,
        point: u64,
        n: usize,
    ) -> (Vec<N>, Vec<(N, N)>) {
        // Walk the full preference order, replacing down nodes.
        let extended = ring.full_walk_at(point);
        let ideal = &extended[..n.min(extended.len())];
        let mut active: Vec<N> = Vec::with_capacity(n);
        let mut substitutions: Vec<(N, N)> = Vec::new();
        let mut fallbacks = extended.iter().skip(ideal.len());
        for node in ideal {
            if self.is_routable(node) {
                active.push(node.clone());
            } else {
                // next routable node not already used
                let fallback = fallbacks
                    .by_ref()
                    .find(|f| self.is_routable(f) && !active.contains(*f));
                if let Some(f) = fallback {
                    active.push(f.clone());
                    substitutions.push((node.clone(), f.clone()));
                }
            }
        }
        (active, substitutions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> HashRing<u32> {
        HashRing::with_vnodes(0..5, 16)
    }

    #[test]
    fn all_up_no_substitutions() {
        let m = Membership::new(0..5u32);
        let (active, subs) = m.sloppy_preference_list(&ring(), b"k", 3);
        assert_eq!(active.len(), 3);
        assert!(subs.is_empty());
        assert_eq!(active, ring().preference_list(b"k", 3));
    }

    #[test]
    fn down_primary_is_substituted() {
        let r = ring();
        let ideal = r.preference_list(b"k", 3);
        let mut m = Membership::new(0..5u32);
        m.mark_down(&ideal[0]);
        let (active, subs) = m.sloppy_preference_list(&r, b"k", 3);
        assert_eq!(active.len(), 3);
        assert!(!active.contains(&ideal[0]));
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].0, ideal[0]);
        assert!(active.contains(&subs[0].1));
    }

    #[test]
    fn too_many_down_yields_short_list() {
        let mut m = Membership::new(0..5u32);
        for n in 0..4u32 {
            m.mark_down(&n);
        }
        let (active, _) = m.sloppy_preference_list(&ring(), b"k", 3);
        assert_eq!(active, vec![4], "only one node is up");
    }

    #[test]
    fn recovery_restores_routing() {
        let r = ring();
        let ideal = r.preference_list(b"k", 3);
        let mut m = Membership::new(0..5u32);
        m.mark_down(&ideal[1]);
        let (with_down, _) = m.sloppy_preference_list(&r, b"k", 3);
        assert!(!with_down.contains(&ideal[1]));
        m.mark_up(&ideal[1]);
        let (healed, subs) = m.sloppy_preference_list(&r, b"k", 3);
        assert_eq!(healed, ideal);
        assert!(subs.is_empty());
    }

    #[test]
    fn status_tracking() {
        let mut m = Membership::new([1u32, 2]);
        assert!(m.is_up(&1));
        assert!(!m.is_up(&9), "unknown nodes are not up");
        m.mark_down(&1);
        assert!(!m.is_up(&1));
        assert_eq!(m.up_nodes(), vec![2]);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn joining_and_leaving_are_routable_but_not_up() {
        let mut m = Membership::new([1u32, 2, 3]);
        m.set_status(&1, NodeStatus::Joining);
        m.set_status(&2, NodeStatus::Leaving);
        assert!(m.is_routable(&1) && m.is_routable(&2) && m.is_routable(&3));
        assert!(!m.is_up(&1) && !m.is_up(&2) && m.is_up(&3));
        assert_eq!(m.up_nodes(), vec![3]);
        assert_eq!(m.status(&1), Some(NodeStatus::Joining));
        assert!(!m.is_routable(&9), "unknown nodes are not routable");
        m.mark_down(&1);
        assert!(!m.is_routable(&1));
    }

    #[test]
    fn joining_nodes_participate_in_routing() {
        let r = ring();
        let ideal = r.preference_list(b"k", 3);
        let mut m = Membership::new(0..5u32);
        m.set_status(&ideal[0], NodeStatus::Joining);
        let (active, subs) = m.sloppy_preference_list(&r, b"k", 3);
        assert_eq!(active, ideal, "a joiner serves its ranges immediately");
        assert!(subs.is_empty());
    }

    #[test]
    fn remove_forgets_a_member() {
        let mut m = Membership::new([1u32, 2]);
        assert!(m.remove(&1));
        assert!(!m.remove(&1));
        assert_eq!(m.members(), vec![2]);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn sync_members_reconciles_without_clobbering_status() {
        let mut m = Membership::new([1u32, 2, 3]);
        m.mark_down(&2);
        m.sync_members(&[2, 3, 4]);
        assert_eq!(m.members(), vec![2, 3, 4]);
        assert!(!m.is_up(&2), "known member keeps its Down status");
        assert!(m.is_up(&4), "new member starts up");
        assert_eq!(m.status(&1), None, "absent member forgotten");
    }

    #[test]
    fn fallbacks_never_duplicate_active_nodes() {
        let r = ring();
        for key in 0..50u32 {
            let k = format!("key{key}");
            let mut m = Membership::new(0..5u32);
            let ideal = r.preference_list(k.as_bytes(), 3);
            m.mark_down(&ideal[0]);
            m.mark_down(&ideal[2]);
            let (active, _) = m.sloppy_preference_list(&r, k.as_bytes(), 3);
            let mut sorted = active.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), active.len(), "duplicate in {active:?}");
        }
    }
}
