//! A dependency-free 64-bit hash for ring placement.
//!
//! FNV-1a over the bytes followed by a SplitMix64 finalizer: fast, stable
//! across platforms and runs (required for reproducible simulations), and
//! well-mixed enough for token placement. Not cryptographic — placement
//! does not need collision resistance against adversaries.

/// Hashes a key to a 64-bit ring position.
///
/// # Examples
///
/// ```
/// use ring::hash_key;
/// assert_eq!(hash_key(b"cart"), hash_key(b"cart"), "deterministic");
/// assert_ne!(hash_key(b"cart"), hash_key(b"cart2"));
/// ```
#[must_use]
pub fn hash_key(key: &[u8]) -> u64 {
    hash_with_seed(key, 0)
}

/// Hashes a key with a seed (used to derive virtual-node tokens).
#[must_use]
pub fn hash_with_seed(key: &[u8], seed: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for b in key {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    finalize(h)
}

fn finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_key(b"abc"), hash_key(b"abc"));
        assert_eq!(hash_with_seed(b"abc", 9), hash_with_seed(b"abc", 9));
    }

    #[test]
    fn seed_changes_hash() {
        assert_ne!(hash_with_seed(b"abc", 1), hash_with_seed(b"abc", 2));
    }

    #[test]
    fn empty_key_hashes() {
        // must not panic, and must differ across seeds
        assert_ne!(hash_with_seed(b"", 0), hash_with_seed(b"", 1));
    }

    #[test]
    fn avalanche_smoke() {
        // one-bit input changes flip roughly half the output bits
        let a = hash_key(b"key0");
        let b = hash_key(b"key1");
        let flipped = (a ^ b).count_ones();
        assert!(
            (16..=48).contains(&flipped),
            "weak diffusion: {flipped} bits"
        );
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        // bucket 10k sequential keys into 16 bins; no bin should be wildly off
        let mut bins = [0u32; 16];
        for i in 0..10_000u32 {
            let h = hash_key(format!("user:{i}").as_bytes());
            bins[(h >> 60) as usize] += 1;
        }
        let expected = 10_000 / 16;
        for (i, count) in bins.iter().enumerate() {
            assert!(
                (*count as i64 - expected as i64).abs() < expected as i64 / 2,
                "bin {i} has {count}, expected ≈{expected}"
            );
        }
    }
}
