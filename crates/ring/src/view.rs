//! [`RingView`]: a *mergeable* ring-membership state, the unit of state
//! exchanged by epidemic (gossip) ring dissemination.
//!
//! Earlier revisions versioned the whole view with one control-plane
//! epoch, which totally orders membership changes: only one change can
//! be in flight, and two concurrent announcements (a join on one side of
//! a partition, a leave on the other) race — whichever epoch is higher
//! clobbers the other. This module versions *each member* instead:
//! a view maps member → [`MemberEntry`] `(incarnation, status)`, and two
//! views join by taking, per member, the entry with the higher
//! incarnation (ties broken by status rank). The join is commutative,
//! associative and idempotent — a state-based CRDT — so views converge
//! under arbitrary delivery orders and concurrent changes *merge*
//! instead of racing.

use std::collections::BTreeMap;
use std::fmt::Debug;

use crate::hash::hash_with_seed;
use crate::ring_impl::HashRing;

/// Lifecycle status of one member entry in a [`RingView`].
///
/// `Up` and `Joining` place the member in the ring (it owns ranges and
/// routes); `Leaving` and `Removed` take it out (`Leaving` = announced
/// departure, still draining its ranges; `Removed` = drain complete,
/// entry kept as a tombstone so the departure survives merges).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemberStatus {
    /// Full ring member.
    Up,
    /// In the ring and routable, still streaming its newly-owned ranges.
    Joining,
    /// Out of the ring, still reachable while it drains its ranges.
    Leaving,
    /// Out of the ring for good; tombstone entry.
    Removed,
}

impl MemberStatus {
    /// Whether a member with this status is part of the hash ring
    /// (owns ranges, appears in preference lists).
    #[must_use]
    pub fn in_ring(self) -> bool {
        matches!(self, MemberStatus::Up | MemberStatus::Joining)
    }

    /// Tie-break rank for equal incarnations: the *more departed* status
    /// wins, so a conflicting same-incarnation join/leave pair resolves
    /// deterministically (and conservatively) everywhere.
    fn rank(self) -> u8 {
        match self {
            MemberStatus::Up => 0,
            MemberStatus::Joining => 1,
            MemberStatus::Leaving => 2,
            MemberStatus::Removed => 3,
        }
    }

    /// Stable one-byte wire encoding of this status (equal to its rank).
    #[must_use]
    pub fn wire_tag(self) -> u8 {
        self.rank()
    }

    /// Inverse of [`MemberStatus::wire_tag`].
    #[must_use]
    pub fn from_wire_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(MemberStatus::Up),
            1 => Some(MemberStatus::Joining),
            2 => Some(MemberStatus::Leaving),
            3 => Some(MemberStatus::Removed),
            _ => None,
        }
    }
}

/// One member's versioned entry in a [`RingView`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemberEntry {
    /// Last-writer-wins version for this member: every announcement about
    /// the member (join, leave, re-admission) bumps it by one.
    pub incarnation: u64,
    /// The member's lifecycle status at that incarnation.
    pub status: MemberStatus,
}

impl MemberEntry {
    /// Whether this entry wins a merge against `other`: strictly higher
    /// incarnation, or equal incarnation and higher status rank.
    #[must_use]
    pub fn beats(&self, other: &MemberEntry) -> bool {
        (self.incarnation, self.status.rank()) > (other.incarnation, other.status.rank())
    }

    /// The entry's position in the merge order as one integer:
    /// `(incarnation << 2) | status rank`. Equal keys mean equal entries
    /// and a greater key means [`MemberEntry::beats`], so exchanging
    /// per-member keys lets two peers *prove* which side dominates each
    /// entry — the substrate of delta view reconciliation.
    #[must_use]
    pub fn summary_key(&self) -> u64 {
        (self.incarnation << 2) | u64::from(self.status.rank())
    }
}

/// A mergeable ring-membership state: member → `(incarnation, status)`.
///
/// Because a [`HashRing`] is a pure function of the in-ring member set
/// (see [`HashRing::from_members`]), a `RingView` is all a process needs
/// to reconstruct the full routing state it describes — which makes it
/// the natural payload for gossip: peers exchange *digests* (a 64-bit
/// hash of the merged state) cheaply and push the full view only on
/// mismatch. [`RingView::merge`] is a join-semilattice join, so any two
/// processes that have merged the same set of announcements hold
/// identical views regardless of delivery order.
#[derive(Clone, Debug)]
pub struct RingView<N: Ord> {
    entries: BTreeMap<N, MemberEntry>,
    /// Cached [`RingView::digest`] — a pure function of `entries`,
    /// refreshed by every mutating method. Digests are read on every
    /// message sent or received (request stamps, gossip rounds,
    /// convergence checks), while mutations happen only on membership
    /// announcements and state-changing merges, so the hash is paid
    /// where it is rare.
    digest: u64,
}

impl<N: Ord> PartialEq for RingView<N> {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl<N: Ord> Eq for RingView<N> {}

impl<N: Clone + Ord + Debug> Default for RingView<N> {
    fn default() -> Self {
        let mut view = RingView {
            entries: BTreeMap::new(),
            digest: 0,
        };
        view.refresh_digest();
        view
    }
}

impl<N: Clone + Ord + Debug> RingView<N> {
    /// Creates an empty view.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a view with every given member `Up` at incarnation 1 —
    /// the bootstrap state of a freshly configured cluster.
    #[must_use]
    pub fn from_members(members: impl IntoIterator<Item = N>) -> Self {
        let mut view = RingView {
            entries: members
                .into_iter()
                .map(|n| {
                    (
                        n,
                        MemberEntry {
                            incarnation: 1,
                            status: MemberStatus::Up,
                        },
                    )
                })
                .collect(),
            digest: 0,
        };
        view.refresh_digest();
        view
    }

    /// The member's current entry, if any.
    #[must_use]
    pub fn entry(&self, node: &N) -> Option<&MemberEntry> {
        self.entries.get(node)
    }

    /// The member's current status, if any.
    #[must_use]
    pub fn status(&self, node: &N) -> Option<MemberStatus> {
        self.entries.get(node).map(|e| e.status)
    }

    /// Inserts or overwrites a member's entry verbatim (construction /
    /// test helper; protocol paths use [`RingView::bump`] and
    /// [`RingView::merge`]).
    pub fn set(&mut self, node: N, incarnation: u64, status: MemberStatus) {
        self.entries.insert(
            node,
            MemberEntry {
                incarnation,
                status,
            },
        );
        self.refresh_digest();
    }

    /// Announces a new lifecycle status for `node` under a fresh
    /// incarnation (one above its current entry, or 1 for an unknown
    /// member). Returns the incarnation spent.
    pub fn bump(&mut self, node: &N, status: MemberStatus) -> u64 {
        let incarnation = self.entries.get(node).map_or(0, |e| e.incarnation) + 1;
        self.entries.insert(
            node.clone(),
            MemberEntry {
                incarnation,
                status,
            },
        );
        self.refresh_digest();
        incarnation
    }

    /// Merges `other` into this view: per member, the entry with the
    /// higher `(incarnation, status rank)` wins. Returns whether the
    /// local view changed.
    ///
    /// The merge is commutative, associative and idempotent, and `self`
    /// only ever grows in the entry order — so any set of views merged in
    /// any order, with any duplication, converges to the same state.
    pub fn merge(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for (n, theirs) in &other.entries {
            changed |= self.merge_entry(n, theirs);
        }
        if changed {
            self.refresh_digest();
        }
        changed
    }

    /// The one per-member join everything funnels through — full-view
    /// merges ([`RingView::merge`]/[`RingView::absorb`]) and delta
    /// merges ([`RingView::absorb_delta`]) alike: take `theirs` iff it
    /// beats the local entry. Returns whether the local entry changed.
    /// Does not refresh the digest; callers do, once per batch.
    fn merge_entry(&mut self, n: &N, theirs: &MemberEntry) -> bool {
        match self.entries.get_mut(n) {
            None => {
                self.entries.insert(n.clone(), *theirs);
                true
            }
            Some(mine) if theirs.beats(mine) => {
                *mine = *theirs;
                true
            }
            Some(_) => false,
        }
    }

    /// Merges an incoming view and reports what the gossip protocol
    /// needs to know: `(changed, sender_lacks)`. `changed` is
    /// [`RingView::merge`]'s return; `sender_lacks` means the *sender's*
    /// copy was missing entries this view holds (the merged state
    /// differs from what was received), so the receiver should push the
    /// merged view back — the rule that makes one digest-mismatch
    /// exchange converge both ends. Both server and client receive paths
    /// go through here, so the protocol-critical inequality lives in
    /// exactly one place.
    pub fn absorb(&mut self, incoming: &Self) -> (bool, bool) {
        let changed = self.merge(incoming);
        (changed, *self != *incoming)
    }

    /// The per-member digest a delta exchange opens with: every entry's
    /// `(member, summary_key)`. Because [`MemberEntry::summary_key`] is
    /// order-isomorphic to the merge order, comparing keys per member
    /// tells a peer *exactly* which of its entries the summary's sender
    /// lacks or holds a dominated version of — no probabilistic hashing,
    /// no false transfers.
    #[must_use]
    pub fn summary(&self) -> Vec<(N, u64)> {
        self.entries
            .iter()
            .map(|(n, e)| (n.clone(), e.summary_key()))
            .collect()
    }

    /// Compares this view against a peer's [`RingView::summary`] and
    /// returns `(entries, want)`: the local entries the peer provably
    /// lacks or holds dominated versions of (these should travel to it),
    /// and the members where the peer provably dominates or is unknown
    /// here (the peer should send those back).
    #[must_use]
    pub fn delta_against(&self, summary: &[(N, u64)]) -> (Vec<(N, MemberEntry)>, Vec<N>) {
        let theirs: BTreeMap<&N, u64> = summary.iter().map(|(n, k)| (n, *k)).collect();
        let mut entries = Vec::new();
        let mut want = Vec::new();
        for (n, mine) in &self.entries {
            match theirs.get(n) {
                None => entries.push((n.clone(), *mine)),
                Some(&k) if k < mine.summary_key() => entries.push((n.clone(), *mine)),
                Some(&k) if k > mine.summary_key() => want.push(n.clone()),
                Some(_) => {}
            }
        }
        for (n, _) in summary {
            if !self.entries.contains_key(n) {
                want.push(n.clone());
            }
        }
        want.sort();
        want.dedup();
        (entries, want)
    }

    /// Merges a peer's delta `entries` through the same per-member join
    /// as [`RingView::absorb`], and answers its `want` list. Returns
    /// `(changed, push_back)`: whether the local view changed, and the
    /// entries the *sender* still lacks — its requested `want` members
    /// plus any incoming entry the local view dominates (the
    /// merge-then-push-back-iff-sender-lacks rule, in delta form).
    /// Push-backs are exact, so the exchange terminates: an entry only
    /// travels back when it strictly beats what the sender proved it
    /// holds.
    pub fn absorb_delta(
        &mut self,
        entries: &[(N, MemberEntry)],
        want: &[N],
    ) -> (bool, Vec<(N, MemberEntry)>) {
        let mut changed = false;
        let mut push_back: BTreeMap<N, MemberEntry> = BTreeMap::new();
        for (n, theirs) in entries {
            if self.merge_entry(n, theirs) {
                changed = true;
            } else if let Some(mine) = self.entries.get(n) {
                if mine.beats(theirs) {
                    push_back.insert(n.clone(), *mine);
                }
            }
        }
        for n in want {
            if let Some(mine) = self.entries.get(n) {
                push_back.insert(n.clone(), *mine);
            }
        }
        if changed {
            self.refresh_digest();
        }
        (changed, push_back.into_iter().collect())
    }

    /// Whether this view already contains everything in `other` (merging
    /// `other` would change nothing).
    #[must_use]
    pub fn dominates(&self, other: &Self) -> bool {
        other.entries.iter().all(|(n, theirs)| {
            self.entries
                .get(n)
                .is_some_and(|mine| mine == theirs || mine.beats(theirs))
        })
    }

    /// The in-ring members (status `Up` or `Joining`), in sorted order.
    #[must_use]
    pub fn members(&self) -> Vec<N> {
        self.entries
            .iter()
            .filter(|(_, e)| e.status.in_ring())
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Iterates over every entry, departed tombstones included.
    pub fn iter(&self) -> impl Iterator<Item = (&N, &MemberEntry)> {
        self.entries.iter()
    }

    /// Number of in-ring members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.values().filter(|e| e.status.in_ring()).count()
    }

    /// Whether the view has no in-ring members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of entries, tombstones included (wire sizing).
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// The digest a gossip round exchanges: a 64-bit hash over every
    /// `(member, incarnation, status)` entry. Equal digests mean (up to
    /// hash collision) identical merged states; there is no order between
    /// digests — on mismatch the full view is exchanged and merged.
    ///
    /// Reads the cached value (request stamping and convergence checks
    /// call this per message); every mutating method refreshes it.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.digest
    }

    fn refresh_digest(&mut self) {
        let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
        for (n, e) in &self.entries {
            let seed = e.incarnation ^ (u64::from(e.status.wire_tag()) << 56);
            let h = hash_with_seed(format!("{n:?}").as_bytes(), seed);
            acc = acc.rotate_left(7) ^ h;
        }
        self.digest = acc;
    }

    /// Monotone progress scalar: the sum of all incarnations. Every
    /// announcement merged in raises it by at least one, so it serves as
    /// the rebuilt ring's epoch (and a human-readable "how many changes
    /// has this process seen" counter) — but unlike the digest it does
    /// not identify the state: compare digests to test convergence.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.entries.values().map(|e| e.incarnation).sum()
    }

    /// Rebuilds the [`HashRing`] this view describes from its in-ring
    /// members, with [`RingView::version`] as the ring epoch.
    #[must_use]
    pub fn to_ring(&self, vnodes: u32) -> HashRing<N> {
        HashRing::from_members(self.members(), vnodes, self.version())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_members_round_trips_through_the_ring() {
        let view: RingView<u32> = RingView::from_members(0..4);
        assert_eq!(view.members(), vec![0, 1, 2, 3]);
        assert_eq!(view.len(), 4);
        assert!(!view.is_empty());
        assert_eq!(view.version(), 4, "four incarnation-1 members");
        let ring = view.to_ring(16);
        assert_eq!(ring.nodes(), &[0, 1, 2, 3]);
        assert_eq!(ring.epoch(), view.version());
        let direct: HashRing<u32> = HashRing::from_members(0..4, 16, view.version());
        for i in 0..50 {
            let k = format!("k{i}");
            assert_eq!(
                ring.preference_list(k.as_bytes(), 3),
                direct.preference_list(k.as_bytes(), 3),
                "rebuilt ring must route identically"
            );
        }
    }

    #[test]
    fn leaving_and_removed_members_are_out_of_the_ring() {
        let mut view: RingView<u32> = RingView::from_members(0..4);
        view.bump(&0, MemberStatus::Leaving);
        view.bump(&1, MemberStatus::Removed);
        assert_eq!(view.members(), vec![2, 3]);
        assert_eq!(view.len(), 2);
        assert_eq!(view.entry_count(), 4, "tombstones are kept");
        assert!(!view.to_ring(8).nodes().contains(&0));
        assert_eq!(view.status(&0), Some(MemberStatus::Leaving));
        assert_eq!(view.status(&9), None);
    }

    #[test]
    fn bump_spends_fresh_incarnations() {
        let mut view: RingView<u32> = RingView::new();
        assert_eq!(view.bump(&7, MemberStatus::Joining), 1);
        assert_eq!(view.bump(&7, MemberStatus::Up), 2);
        assert_eq!(view.bump(&7, MemberStatus::Leaving), 3);
        assert_eq!(view.entry(&7).unwrap().incarnation, 3);
        assert_eq!(view.version(), 3);
    }

    #[test]
    fn merge_is_per_member_last_writer_wins() {
        let mut a: RingView<u32> = RingView::from_members(0..3);
        let mut b = a.clone();
        a.bump(&0, MemberStatus::Leaving); // incarnation 2
        b.bump(&0, MemberStatus::Up); // also incarnation 2: a tie
        b.bump(&0, MemberStatus::Up); // incarnation 3

        let mut merged = a.clone();
        assert!(merged.merge(&b));
        assert_eq!(
            merged.entry(&0),
            Some(&MemberEntry {
                incarnation: 3,
                status: MemberStatus::Up
            }),
            "the higher incarnation wins regardless of status"
        );
        assert!(!merged.merge(&b), "re-merging is a no-op");
        assert!(merged.dominates(&a) && merged.dominates(&b));
        assert!(!a.dominates(&b));
    }

    #[test]
    fn equal_incarnation_ties_break_toward_departure() {
        let mut join: RingView<u32> = RingView::new();
        join.set(5, 4, MemberStatus::Up);
        let mut leave: RingView<u32> = RingView::new();
        leave.set(5, 4, MemberStatus::Leaving);

        let mut ab = join.clone();
        ab.merge(&leave);
        let mut ba = leave.clone();
        ba.merge(&join);
        assert_eq!(ab, ba, "tie-break must be symmetric");
        assert_eq!(ab.status(&5), Some(MemberStatus::Leaving));
        assert_eq!(
            ab.version(),
            ba.version(),
            "ties cannot be told apart by version alone"
        );
        assert_eq!(ab.digest(), ba.digest());
    }

    #[test]
    fn digest_tracks_state_not_just_version() {
        let mut up: RingView<u32> = RingView::new();
        up.set(1, 2, MemberStatus::Up);
        let mut leaving: RingView<u32> = RingView::new();
        leaving.set(1, 2, MemberStatus::Leaving);
        assert_eq!(up.version(), leaving.version());
        assert_ne!(
            up.digest(),
            leaving.digest(),
            "a status flip must change the digest"
        );
        assert_eq!(up.digest(), up.clone().digest(), "digest is pure");
    }

    #[test]
    fn cached_digest_tracks_every_mutation() {
        // the cache must be indistinguishable from recomputing: a view
        // reached by any sequence of mutations digests identically to a
        // freshly built view with the same entries
        let mut mutated: RingView<u32> = RingView::from_members(0..3);
        mutated.bump(&0, MemberStatus::Leaving);
        mutated.set(7, 4, MemberStatus::Joining);
        let mut other: RingView<u32> = RingView::new();
        other.bump(&9, MemberStatus::Up);
        mutated.merge(&other);

        let mut fresh: RingView<u32> = RingView::new();
        for (n, e) in mutated.iter() {
            // rebuild entry-by-entry through a different mutation path
            fresh.set(*n, e.incarnation, e.status);
        }
        assert_eq!(mutated, fresh);
        assert_eq!(mutated.digest(), fresh.digest());
        // a no-op merge must not disturb the cache
        let before = mutated.digest();
        assert!(!mutated.merge(&other.clone()));
        assert_eq!(mutated.digest(), before);
    }

    #[test]
    fn absorb_reports_change_and_sender_gap() {
        let base: RingView<u32> = RingView::from_members(0..2);
        let mut ahead = base.clone();
        ahead.bump(&0, MemberStatus::Leaving);

        // receiver behind, sender complete: change, no reply needed
        let mut behind = base.clone();
        assert_eq!(behind.absorb(&ahead), (true, false));
        // receiver ahead, sender behind: no change, reply needed
        assert_eq!(ahead.clone().absorb(&base), (false, true));
        // incomparable: both change and reply
        let mut left = base.clone();
        left.bump(&0, MemberStatus::Leaving);
        let mut right = base.clone();
        right.bump(&1, MemberStatus::Leaving);
        assert_eq!(left.absorb(&right), (true, true));
        // identical: neither
        assert_eq!(left.clone().absorb(&left), (false, false));
    }

    #[test]
    fn summary_key_is_order_isomorphic_to_beats() {
        let entries = [
            MemberEntry {
                incarnation: 1,
                status: MemberStatus::Up,
            },
            MemberEntry {
                incarnation: 1,
                status: MemberStatus::Removed,
            },
            MemberEntry {
                incarnation: 2,
                status: MemberStatus::Up,
            },
            MemberEntry {
                incarnation: 3,
                status: MemberStatus::Leaving,
            },
        ];
        for a in &entries {
            for b in &entries {
                assert_eq!(
                    a.beats(b),
                    a.summary_key() > b.summary_key(),
                    "{a:?} vs {b:?}"
                );
                assert_eq!(a == b, a.summary_key() == b.summary_key());
            }
        }
    }

    #[test]
    fn wire_tag_round_trips_every_status() {
        for s in [
            MemberStatus::Up,
            MemberStatus::Joining,
            MemberStatus::Leaving,
            MemberStatus::Removed,
        ] {
            assert_eq!(MemberStatus::from_wire_tag(s.wire_tag()), Some(s));
        }
        assert_eq!(MemberStatus::from_wire_tag(4), None);
    }

    /// One summary → delta → push-back exchange converges both ends,
    /// even against an incomplete sender: A (missing an entry, holding a
    /// stale one and a dominating one) sends its summary; B answers with
    /// exactly the entries A lacks plus a want-list; A merges and pushes
    /// back exactly what B lacks.
    #[test]
    fn delta_exchange_converges_incomparable_views_in_one_round_trip() {
        let base: RingView<u32> = RingView::from_members(0..3);
        let mut a = base.clone();
        let mut b = base.clone();
        a.bump(&0, MemberStatus::Leaving); // A ahead on 0
        b.bump(&1, MemberStatus::Leaving); // B ahead on 1
        b.bump(&7, MemberStatus::Joining); // B knows a member A lacks

        // A → B: summary; B computes the delta
        let (entries, want) = b.delta_against(&a.summary());
        let sent: Vec<u32> = entries.iter().map(|(n, _)| *n).collect();
        assert_eq!(sent, vec![1, 7], "only B's provable wins travel");
        assert_eq!(want, vec![0], "B asks only for A's provable win");

        // B → A: delta; A merges and answers the want list
        let (changed, push_back) = a.absorb_delta(&entries, &want);
        assert!(changed);
        assert_eq!(push_back.len(), 1);
        assert_eq!(push_back[0].0, 0);

        // A → B: push-back; B merges, nothing further to say
        let (changed, reply) = b.absorb_delta(&push_back, &[]);
        assert!(changed);
        assert!(reply.is_empty(), "exchange terminates");
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn delta_against_identical_views_is_empty() {
        let view: RingView<u32> = RingView::from_members(0..4);
        let (entries, want) = view.delta_against(&view.summary());
        assert!(entries.is_empty() && want.is_empty());
    }

    #[test]
    fn absorb_delta_pushes_back_dominating_local_entries() {
        // sender ships a stale entry it believes is news: receiver must
        // not regress and must push its dominating entry back
        let mut receiver: RingView<u32> = RingView::new();
        receiver.set(5, 3, MemberStatus::Leaving);
        let stale = [(
            5u32,
            MemberEntry {
                incarnation: 2,
                status: MemberStatus::Up,
            },
        )];
        let before = receiver.digest();
        let (changed, push_back) = receiver.absorb_delta(&stale, &[]);
        assert!(!changed);
        assert_eq!(receiver.digest(), before);
        assert_eq!(
            push_back,
            vec![(
                5,
                MemberEntry {
                    incarnation: 3,
                    status: MemberStatus::Leaving
                }
            )]
        );
        // the push-back is itself a delta the sender absorbs silently
        let mut sender: RingView<u32> = RingView::new();
        sender.set(5, 2, MemberStatus::Up);
        let (changed, reply) = sender.absorb_delta(&push_back, &[]);
        assert!(changed && reply.is_empty());
        assert_eq!(sender, receiver);
    }

    #[test]
    fn empty_view_builds_an_empty_ring() {
        let view: RingView<u32> = RingView::new();
        assert!(view.is_empty());
        assert!(view.to_ring(8).is_empty());
        assert_eq!(view.version(), 0);
    }
}
