//! [`RingView`]: a versioned snapshot of ring membership, the unit of
//! state exchanged by epidemic (gossip) ring dissemination.

use std::fmt::Debug;

use crate::ring_impl::HashRing;

/// A versioned ring-membership view: the complete member set at one ring
/// epoch.
///
/// Because a [`HashRing`] is a pure function of `(member set, epoch)`
/// (see [`HashRing::from_members`]), a `RingView` is all a process needs
/// to reconstruct the full routing state of that epoch — which makes it
/// the natural payload for gossip: peers exchange *digests* (just the
/// epoch) cheaply and pull or push the full view only on mismatch.
/// Views are totally ordered by epoch; adoption is last-writer-wins on
/// the epoch, which is safe because the control plane issues epochs
/// monotonically (one membership change settles before the next begins).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RingView<N> {
    /// The ring epoch this view describes.
    pub epoch: u64,
    /// The complete member set at that epoch.
    pub members: Vec<N>,
}

impl<N: Clone + Ord + Debug> RingView<N> {
    /// Creates a view from an epoch and member set.
    #[must_use]
    pub fn new(epoch: u64, members: Vec<N>) -> Self {
        RingView { epoch, members }
    }

    /// The digest a gossip round exchanges: just the epoch. Two views
    /// with equal digests are identical (epochs are issued monotonically
    /// with their member sets).
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.epoch
    }

    /// Whether this view supersedes a peer's `epoch` — i.e. the peer
    /// should pull this full view.
    #[must_use]
    pub fn supersedes(&self, epoch: u64) -> bool {
        self.epoch > epoch
    }

    /// Number of members in the view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the view has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Rebuilds the [`HashRing`] this view describes.
    #[must_use]
    pub fn to_ring(&self, vnodes: u32) -> HashRing<N> {
        HashRing::from_members(self.members.iter().cloned(), vnodes, self.epoch)
    }
}

impl<N: Clone + Ord + Debug> HashRing<N> {
    /// This ring's membership view — the `(epoch, member set)` snapshot
    /// gossip disseminates.
    #[must_use]
    pub fn view(&self) -> RingView<N> {
        RingView::new(self.epoch(), self.nodes().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_round_trips_through_the_ring() {
        let ring: HashRing<u32> = HashRing::with_vnodes(0..4, 16);
        let view = ring.view();
        assert_eq!(view.members, ring.nodes());
        assert_eq!(view.epoch, ring.epoch());
        assert_eq!(view.len(), 4);
        assert!(!view.is_empty());
        let rebuilt = view.to_ring(16);
        assert_eq!(rebuilt.nodes(), ring.nodes());
        assert_eq!(rebuilt.epoch(), ring.epoch());
        for i in 0..50 {
            let k = format!("k{i}");
            assert_eq!(
                rebuilt.preference_list(k.as_bytes(), 3),
                ring.preference_list(k.as_bytes(), 3),
                "rebuilt ring must route identically"
            );
        }
    }

    #[test]
    fn supersedes_is_strict_epoch_order() {
        let view: RingView<u32> = RingView::new(7, vec![1, 2, 3]);
        assert!(view.supersedes(6));
        assert!(!view.supersedes(7), "equal epochs are the same view");
        assert!(!view.supersedes(8));
        assert_eq!(view.digest(), 7);
    }

    #[test]
    fn empty_view_builds_an_empty_ring() {
        let view: RingView<u32> = RingView::new(0, Vec::new());
        assert!(view.is_empty());
        assert!(view.to_ring(8).is_empty());
    }
}
