//! The experiment runners: one function per table/figure of the
//! reproduction (DESIGN.md §5).

use std::hint::black_box;
use std::time::Instant;

use dvv::mechanisms::{
    DvvMechanism, DvvSetMechanism, LamportMechanism, Mechanism, OrderedVv, OrderedVvMechanism,
    VvClientMechanism, VvServerMechanism, WriteOrigin,
};
use dvv::server::{self, Tagged};
use dvv::{CausalHistory, ClientId, Dot, Dvv, DvvSet, ReplicaId, VersionVector};
use kvstore::cluster::{Cluster, ClusterConfig};
use kvstore::config::ClientConfig;
use kvstore::StampedValue;
use simnet::{Duration, LatencyModel, LinkConfig, NetworkConfig};

use crate::table::Table;

/// Mean nanoseconds per call of `f` over `iters` iterations.
pub fn time_ns<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    // warm-up
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

// ---------------------------------------------------------------------
// E1–E3: Figure 1 replay
// ---------------------------------------------------------------------

/// Replays the paper's Figure 1 script under mechanism `M`, returning one
/// rendered line per figure row.
pub fn figure1_trace<M: Mechanism<&'static str>>(mech: M) -> Vec<String> {
    let a = ReplicaId(0);
    let origin = |c: u64| WriteOrigin::new(a, ClientId(c));
    let mut server_a = M::State::default();
    let mut server_b = M::State::default();
    let mut log = Vec::new();
    let render = |mech: &M, st: &M::State| {
        let (values, _) = mech.read(st);
        format!("{} sibling(s) {:?}", mech.sibling_count(st), values)
    };

    mech.write(&mut server_a, origin(1), &M::Context::default(), "v1");
    log.push(format!("A after v1:   {}", render(&mech, &server_a)));
    let (_, ctx_v1) = mech.read(&server_a);
    mech.write(&mut server_a, origin(1), &ctx_v1, "v2");
    log.push(format!("A after v2:   {}", render(&mech, &server_a)));
    mech.write(&mut server_a, origin(2), &ctx_v1, "v3");
    log.push(format!("A after v3:   {}", render(&mech, &server_a)));
    mech.merge(&mut server_b, &server_a);
    log.push(format!("B after sync: {}", render(&mech, &server_b)));
    let (_, ctx_all) = mech.read(&server_b);
    mech.write(&mut server_a, origin(3), &ctx_all, "v4");
    mech.merge(&mut server_b, &server_a);
    log.push(format!("A after v4:   {}", render(&mech, &server_a)));
    log
}

/// E1–E3 as one table: sibling counts per figure row per representation.
#[must_use]
pub fn e1_e3_figure1() -> Table {
    let ch = figure1_trace(dvv::mechanisms::CausalHistoryMechanism);
    let vv = figure1_trace(VvServerMechanism);
    let dvv = figure1_trace(DvvMechanism);
    let mut t = Table::new(&["step", "1a causal histories", "1b vv-per-server", "1c dvv"]);
    let steps = ["v1@A", "v2@A", "v3@A", "sync→B", "v4@A"];
    for i in 0..5 {
        t.row(vec![
            steps[i].into(),
            ch[i].split(": ").nth(1).unwrap_or("").into(),
            vv[i].split(": ").nth(1).unwrap_or("").into(),
            dvv[i].split(": ").nth(1).unwrap_or("").into(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E4: O(1) vs O(n) causality verification
// ---------------------------------------------------------------------

/// Builds a pair of related version vectors over `n` actors (`b`
/// dominates `a` by one event).
#[must_use]
pub fn vv_pair(n: usize) -> (VersionVector<ReplicaId>, VersionVector<ReplicaId>) {
    let a: VersionVector<ReplicaId> = (0..n as u32).map(|i| (ReplicaId(i), 5u64)).collect();
    let mut b = a.clone();
    b.set(ReplicaId((n as u32) / 2), 6);
    (a, b)
}

/// Builds a pair of related DVVs whose pasts have `n` entries (`a`
/// precedes `b`).
#[must_use]
pub fn dvv_pair(n: usize) -> (Dvv<ReplicaId>, Dvv<ReplicaId>) {
    let (past_a, _) = vv_pair(n);
    let dot_a = Dot::new(ReplicaId(0), 6);
    let a = Dvv::new(dot_a, past_a.clone());
    let mut past_b = past_a;
    past_b.record(dot_a);
    let b = Dvv::new(Dot::new(ReplicaId(1), 6), past_b);
    (a, b)
}

/// Builds a lineage pair of ordered VVs over `n` actors.
#[must_use]
pub fn ordered_pair(n: usize) -> (OrderedVv<ReplicaId>, OrderedVv<ReplicaId>) {
    let mut a = OrderedVv::new();
    for i in 0..n as u32 {
        a.increment(ReplicaId(i));
    }
    let mut b = a.clone();
    b.increment(ReplicaId(0));
    (a, b)
}

/// Builds a pair of causal histories with `n` events each (`a ⊂ b`).
#[must_use]
pub fn history_pair(n: usize) -> (CausalHistory<ReplicaId>, CausalHistory<ReplicaId>) {
    let a: CausalHistory<ReplicaId> = (0..n as u32).map(|i| Dot::new(ReplicaId(i), 1)).collect();
    let mut b = a.clone();
    b.insert(Dot::new(ReplicaId(0), 2));
    (a, b)
}

/// E4: nanoseconds per causality check vs number of actors `n`.
///
/// `dvv precedes` is the paper's O(1) check (one map lookup); `vv
/// dominates` is the classic O(n) scan; `ordered-vv fast` is Wang &
/// Amza's cached check; `history ⊆` is the exact set-inclusion model.
#[must_use]
pub fn e4_compare(ns: &[usize], iters: u32) -> Table {
    let mut t = Table::new(&[
        "actors",
        "dvv precedes",
        "vv dominates",
        "ordered-vv fast",
        "history ⊆",
    ]);
    for &n in ns {
        let (da, db) = dvv_pair(n);
        let (va, vb) = vv_pair(n);
        let (oa, ob) = ordered_pair(n);
        let (ha, hb) = history_pair(n);
        let dvv_ns = time_ns(iters, || {
            black_box(black_box(&da).precedes(black_box(&db)));
        });
        let vv_ns = time_ns(iters, || {
            black_box(black_box(&vb).dominates(black_box(&va)));
        });
        let ovv_ns = time_ns(iters, || {
            black_box(black_box(&oa).fast_dominated_by(black_box(&ob)));
        });
        let ch_ns = time_ns(iters.min(20_000), || {
            black_box(black_box(&ha).is_subset(black_box(&hb)));
        });
        t.row(vec![
            n.to_string(),
            format!("{dvv_ns:.0}"),
            format!("{vv_ns:.0}"),
            format!("{ovv_ns:.0}"),
            format!("{ch_ns:.0}"),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E5: metadata bounded by replication degree
// ---------------------------------------------------------------------

fn meta_cluster<M: Mechanism<StampedValue>>(mech: M, clients: usize, seed: u64) -> (f64, u64) {
    let config = ClusterConfig {
        servers: 3,
        clients,
        cycles_per_client: 6,
        client: ClientConfig {
            key_count: 1,
            think_time: Duration::from_micros(200),
            ..ClientConfig::default()
        },
        ..ClusterConfig::default()
    };
    let mut c = Cluster::new(seed, mech, config);
    c.run();
    c.converge();
    let meta = c.metadata_report();
    let report = c.anomaly_report();
    (
        meta.mean_bytes_per_key / meta.mean_siblings.max(1.0),
        report.lost_updates + report.false_concurrency,
    )
}

/// E5: per-version causal metadata (bytes) vs client count, 3 replicas.
#[must_use]
pub fn e5_metadata(client_counts: &[usize]) -> Table {
    let mut t = Table::new(&["clients", "dvv", "dvvset", "vv-client", "vv-server(unsafe)"]);
    for &clients in client_counts {
        let (dvv, a1) = meta_cluster(DvvMechanism, clients, 7);
        let (dvvset, a2) = meta_cluster(DvvSetMechanism, clients, 7);
        let (vvc, a3) = meta_cluster(VvClientMechanism::unbounded(), clients, 7);
        let (vvs, _) = meta_cluster(VvServerMechanism, clients, 7);
        assert_eq!(a1 + a2 + a3, 0, "correct mechanisms must audit clean");
        t.row(vec![
            clients.to_string(),
            format!("{dvv:.1}"),
            format!("{dvvset:.1}"),
            format!("{vvc:.1}"),
            format!("{vvs:.1}"),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E6: optimistic pruning is unsafe
// ---------------------------------------------------------------------

/// E6: anomalies and per-version size vs prune threshold (16 clients).
#[must_use]
pub fn e6_pruning(thresholds: &[usize]) -> Table {
    let mut t = Table::new(&[
        "prune-to",
        "bytes/version",
        "lost updates",
        "false concurrency",
    ]);
    let run = |mech: VvClientMechanism| -> (f64, u64, u64) {
        let mut lost = 0;
        let mut fc = 0;
        let mut bytes = 0.0;
        for seed in 0..5 {
            let config = ClusterConfig {
                servers: 3,
                clients: 16,
                cycles_per_client: 8,
                client: ClientConfig {
                    key_count: 2,
                    think_time: Duration::from_micros(200),
                    ..ClientConfig::default()
                },
                ..ClusterConfig::default()
            };
            let mut c = Cluster::new(seed, mech, config);
            c.run();
            c.converge();
            let r = c.anomaly_report();
            lost += r.lost_updates;
            fc += r.false_concurrency;
            let m = c.metadata_report();
            bytes += m.mean_bytes_per_key / m.mean_siblings.max(1.0);
        }
        (bytes / 5.0, lost, fc)
    };
    for &k in thresholds {
        let (bytes, lost, fc) = run(VvClientMechanism::pruned(k));
        t.row(vec![
            k.to_string(),
            format!("{bytes:.1}"),
            lost.to_string(),
            fc.to_string(),
        ]);
    }
    let (bytes, lost, fc) = run(VvClientMechanism::unbounded());
    t.row(vec![
        "∞ (safe)".into(),
        format!("{bytes:.1}"),
        lost.to_string(),
        fc.to_string(),
    ]);
    // DVV reference row
    let (dvv_bytes, anomalies) = meta_cluster(DvvMechanism, 16, 3);
    t.row(vec![
        "dvv".into(),
        format!("{dvv_bytes:.1}"),
        anomalies.to_string(),
        "0".into(),
    ]);
    t
}

// ---------------------------------------------------------------------
// E7: request latency with size-proportional wire cost
// ---------------------------------------------------------------------

fn latency_cluster<M: Mechanism<StampedValue>>(
    mech: M,
    clients: usize,
    seed: u64,
) -> (f64, u64, f64, u64) {
    let config = ClusterConfig {
        servers: 3,
        clients,
        cycles_per_client: 8,
        client: ClientConfig {
            key_count: 1,
            value_size: 16,
            think_time: Duration::from_micros(500),
            ..ClientConfig::default()
        },
        network: NetworkConfig::uniform(LinkConfig {
            latency: LatencyModel::Constant(Duration::from_micros(200)),
            bandwidth: Some(1_000_000), // 1 MB/s: 1µs per byte — metadata counts
            ..LinkConfig::default()
        }),
        deadline: Duration::from_secs(2_000),
        ..ClusterConfig::default()
    };
    let mut c = Cluster::new(seed, mech, config);
    c.run();
    let lat = c.latency_report();
    (
        lat.get.mean(),
        lat.get.percentile(0.99),
        lat.put.mean(),
        lat.put.percentile(0.99),
    )
}

/// E7: GET/PUT latency (µs) per mechanism vs client count, on a
/// bandwidth-limited network where metadata size costs time.
#[must_use]
pub fn e7_latency(client_counts: &[usize]) -> Table {
    let mut t = Table::new(&[
        "clients",
        "mechanism",
        "get mean µs",
        "get p99 µs",
        "put mean µs",
        "put p99 µs",
    ]);
    for &clients in client_counts {
        type LatRow = (f64, u64, f64, u64);
        let rows: Vec<(&str, LatRow)> = vec![
            ("dvv", latency_cluster(DvvMechanism, clients, 5)),
            ("dvvset", latency_cluster(DvvSetMechanism, clients, 5)),
            (
                "vv-client",
                latency_cluster(VvClientMechanism::unbounded(), clients, 5),
            ),
        ];
        for (name, (gm, gp, pm, pp)) in rows {
            t.row(vec![
                clients.to_string(),
                name.into(),
                format!("{gm:.0}"),
                gp.to_string(),
                format!("{pm:.0}"),
                pp.to_string(),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------
// E8: anomaly rates per mechanism
// ---------------------------------------------------------------------

/// E8: lost updates / false concurrency per mechanism over contended
/// random workloads (5 seeds × 8 clients × 15 cycles, 2 keys).
#[must_use]
pub fn e8_anomalies() -> Table {
    fn audit<M: Mechanism<StampedValue>>(mech: M) -> (u64, u64, u64, f64) {
        let mut lost = 0;
        let mut fc = 0;
        let mut writes = 0;
        let mut siblings = 0.0;
        for seed in 0..5 {
            let config = ClusterConfig {
                servers: 3,
                clients: 8,
                cycles_per_client: 15,
                client: ClientConfig {
                    key_count: 2,
                    think_time: Duration::from_micros(200),
                    ..ClientConfig::default()
                },
                ..ClusterConfig::default()
            };
            let mut c = Cluster::new(seed, mech.clone(), config);
            c.run();
            c.converge();
            let r = c.anomaly_report();
            lost += r.lost_updates;
            fc += r.false_concurrency;
            writes += r.acked_writes;
            siblings += c.metadata_report().mean_siblings;
        }
        (writes, lost, fc, siblings / 5.0)
    }
    let mut t = Table::new(&[
        "mechanism",
        "acked writes",
        "lost updates",
        "false concurrency",
        "mean siblings",
    ]);
    type AuditRow = (u64, u64, u64, f64);
    let rows: Vec<(&str, AuditRow)> = vec![
        (
            "causal-histories",
            audit(dvv::mechanisms::CausalHistoryMechanism),
        ),
        ("dvv", audit(DvvMechanism)),
        ("dvvset", audit(DvvSetMechanism)),
        ("vv-client", audit(VvClientMechanism::unbounded())),
        ("vv-client-pruned(2)", audit(VvClientMechanism::pruned(2))),
        ("vve (winfs)", audit(dvv::mechanisms::VveMechanism)),
        ("vv-server", audit(VvServerMechanism)),
        ("ordered-vv", audit(OrderedVvMechanism)),
        ("lamport-lww", audit(LamportMechanism)),
    ];
    for (name, (w, l, f, s)) in rows {
        t.row(vec![
            name.into(),
            w.to_string(),
            l.to_string(),
            f.to_string(),
            format!("{s:.1}"),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E9: DVVSet ablation
// ---------------------------------------------------------------------

/// Builds a sibling set of `s` concurrent versions in both
/// representations.
#[must_use]
pub fn sibling_fixtures(
    s: usize,
) -> (
    Vec<Tagged<ReplicaId, StampedValue>>,
    DvvSet<ReplicaId, StampedValue>,
) {
    let mut tagged = Vec::new();
    let mut set = DvvSet::new();
    let empty = VersionVector::new();
    for i in 0..s {
        let v = StampedValue::new(kvstore::WriteId::new(ClientId(i as u64), 1), vec![0u8; 16]);
        server::update(&mut tagged, &empty, ReplicaId(0), v.clone());
        set.update(&empty, ReplicaId(0), v);
    }
    (tagged, set)
}

/// E9: metadata bytes and op cost — list-of-DVVs vs DVVSet, vs sibling
/// count.
#[must_use]
pub fn e9_dvvset(sibling_counts: &[usize], iters: u32) -> Table {
    let mech_list = DvvMechanism;
    let mech_set = DvvSetMechanism;
    let mut t = Table::new(&[
        "siblings",
        "dvv-list bytes",
        "dvvset bytes",
        "dvv-list update ns",
        "dvvset update ns",
        "dvv-list sync ns",
        "dvvset sync ns",
    ]);
    for &s in sibling_counts {
        let (tagged, set) = sibling_fixtures(s);
        let list_bytes = Mechanism::<StampedValue>::metadata_size(&mech_list, &tagged);
        let set_bytes = Mechanism::<StampedValue>::metadata_size(&mech_set, &set);
        let ctx = server::context(&tagged);
        let v = StampedValue::new(kvstore::WriteId::new(ClientId(999), 1), vec![0u8; 16]);
        let list_update = time_ns(iters, || {
            let mut st = tagged.clone();
            server::update(&mut st, &ctx, ReplicaId(1), v.clone());
            black_box(&st);
        });
        let set_update = time_ns(iters, || {
            let mut st = set.clone();
            st.update(&ctx, ReplicaId(1), v.clone());
            black_box(&st);
        });
        let (tagged2, set2) = sibling_fixtures(s.max(1) - 1);
        let list_sync = time_ns(iters, || {
            black_box(server::sync(&tagged, &tagged2));
        });
        let set_sync = time_ns(iters, || {
            black_box(set.sync(&set2));
        });
        t.row(vec![
            s.to_string(),
            list_bytes.to_string(),
            set_bytes.to_string(),
            format!("{list_update:.0}"),
            format!("{set_update:.0}"),
            format!("{list_sync:.0}"),
            format!("{set_sync:.0}"),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// A1: ablation of the store's repair machinery
// ---------------------------------------------------------------------

/// Runs a partitioned workload and measures how long after the sessions
/// finish the replicas take to converge *through the protocol* (no
/// harness merging). Returns `None` if they fail to converge within 4 s.
fn convergence_time_ms(aae_ms: u64, read_repair: bool, seed: u64) -> Option<u64> {
    use dvv::ReplicaId;
    use simnet::NodeId;

    let config = ClusterConfig {
        servers: 3,
        clients: 4,
        cycles_per_client: 8,
        store: kvstore::StoreConfig {
            anti_entropy_interval: Duration::from_millis(aae_ms),
            read_repair,
            ..kvstore::StoreConfig::default()
        },
        client: ClientConfig {
            key_count: 2,
            think_time: Duration::from_micros(300),
            ..ClientConfig::default()
        },
        deadline: Duration::from_secs(2_000),
        ..ClusterConfig::default()
    };
    let mut c = Cluster::new(seed, DvvMechanism, config);
    c.run_for(Duration::from_millis(15));
    let others: Vec<NodeId> = [0u32, 1, 3, 4, 5, 6].into_iter().map(NodeId).collect();
    c.sim_mut().network_mut().partition_two(others, [NodeId(2)]);
    c.set_replica_status(ReplicaId(2), false);
    c.run_for(Duration::from_millis(60));
    c.sim_mut().network_mut().heal();
    c.set_replica_status(ReplicaId(2), true);
    c.run();
    // probe protocol-level convergence in 10 ms steps of virtual time
    for step in 0..=400u64 {
        let keys = c.oracle().keys();
        let converged = keys.iter().all(|k| {
            let s0 = c.surviving_at(0, k);
            (1..3).all(|i| c.surviving_at(i, k) == s0)
        });
        if converged {
            return Some(step * 10);
        }
        c.run_for(Duration::from_millis(10));
    }
    None
}

/// A1: virtual time to protocol-level convergence after a healed
/// partition, as a function of the anti-entropy interval, with and
/// without read repair — the design-choice ablation from DESIGN.md.
#[must_use]
pub fn a1_repair_ablation(aae_intervals_ms: &[u64]) -> Table {
    let mut t = Table::new(&["aae interval ms", "converge ms after heal"]);
    for &ms in aae_intervals_ms {
        let on =
            convergence_time_ms(ms, true, 41).map_or_else(|| ">4000".into(), |v| v.to_string());
        t.row(vec![ms.to_string(), on]);
    }
    t
}

/// A2: with anti-entropy disabled, read repair is the only background
/// repair path; its effect shows up *during* the session as repaired
/// divergence. Reported: read repairs pushed and divergent keys left at
/// session end, repair on vs off.
#[must_use]
pub fn a2_read_repair_ablation(seeds: &[u64]) -> Table {
    use dvv::ReplicaId;
    use simnet::NodeId;

    fn run(seed: u64, read_repair: bool) -> (u64, usize) {
        let config = ClusterConfig {
            servers: 3,
            clients: 4,
            cycles_per_client: 12,
            store: kvstore::StoreConfig {
                anti_entropy_interval: Duration::ZERO,
                read_repair,
                ..kvstore::StoreConfig::default()
            },
            client: ClientConfig {
                key_count: 2,
                think_time: Duration::from_micros(300),
                ..ClientConfig::default()
            },
            deadline: Duration::from_secs(2_000),
            ..ClusterConfig::default()
        };
        let mut c = Cluster::new(seed, DvvMechanism, config);
        c.run_for(Duration::from_millis(10));
        let others: Vec<NodeId> = [0u32, 1, 3, 4, 5, 6].into_iter().map(NodeId).collect();
        c.sim_mut().network_mut().partition_two(others, [NodeId(2)]);
        c.set_replica_status(ReplicaId(2), false);
        c.run_for(Duration::from_millis(40));
        c.sim_mut().network_mut().heal();
        c.set_replica_status(ReplicaId(2), true);
        c.run();
        let repairs: u64 = (0..3).map(|i| c.server(i).stats().read_repairs).sum();
        let divergent = c
            .oracle()
            .keys()
            .iter()
            .filter(|k| {
                let s0 = c.surviving_at(0, k);
                (1..3).any(|i| c.surviving_at(i, k) != s0)
            })
            .count();
        (repairs, divergent)
    }

    let mut t = Table::new(&[
        "seed",
        "repairs (on)",
        "divergent keys (on)",
        "divergent keys (off)",
    ]);
    for &seed in seeds {
        let (repairs_on, div_on) = run(seed, true);
        let (_, div_off) = run(seed, false);
        t.row(vec![
            seed.to_string(),
            repairs_on.to_string(),
            div_on.to_string(),
            div_off.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shapes() {
        let t = e1_e3_figure1();
        assert_eq!(t.len(), 5);
        let s = t.render();
        assert!(s.contains("v3"), "{s}");
    }

    #[test]
    fn e4_rows_match_input() {
        let t = e4_compare(&[2, 8], 1_000);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn clock_pair_builders_are_related() {
        let (a, b) = dvv_pair(8);
        assert!(a.precedes(&b));
        let (va, vb) = vv_pair(8);
        assert!(vb.dominates(&va) && !va.dominates(&vb));
        let (oa, ob) = ordered_pair(8);
        assert_eq!(oa.fast_dominated_by(&ob), Some(true));
        let (ha, hb) = history_pair(8);
        assert!(ha.is_subset(&hb));
    }

    #[test]
    fn sibling_fixtures_agree() {
        let (tagged, set) = sibling_fixtures(4);
        assert_eq!(tagged.len(), 4);
        assert_eq!(set.sibling_count(), 4);
        assert_eq!(server::context(&tagged), set.context());
    }

    #[test]
    fn e9_table_has_rows() {
        let t = e9_dvvset(&[1, 4], 50);
        assert_eq!(t.len(), 2);
    }
}
