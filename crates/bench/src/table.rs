//! Minimal fixed-width table rendering for experiment output.

use std::fmt::Write as _;

/// A printable table: headers plus string rows, column-aligned.
///
/// # Examples
///
/// ```
/// use dvv_bench::Table;
/// let mut t = Table::new(&["n", "value"]);
/// t.row(vec!["1".into(), "9.5".into()]);
/// let s = t.render();
/// assert!(s.contains("n"));
/// assert!(s.contains("9.5"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with right-aligned, padded columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(out, "{:>w$}  ", h, w = widths[i]);
        }
        out.push('\n');
        for (i, _) in self.headers.iter().enumerate() {
            let _ = write!(out, "{}  ", "-".repeat(widths[i]));
        }
        out.push('\n');
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", c, w = widths[i]);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "x"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1  ") || lines[2].contains('1'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_rejected() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
