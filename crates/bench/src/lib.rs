//! # dvv-bench — experiment runners behind every table and figure
//!
//! Each `eN_*` function regenerates one row set of the paper
//! reproduction's experiment index (see `DESIGN.md` §5). The `figures`
//! binary prints them; `EXPERIMENTS.md` records a captured run; the
//! Criterion benches in `benches/` measure the hot operations with
//! statistical rigour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use experiments::*;
pub use table::Table;
