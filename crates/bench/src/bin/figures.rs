//! Regenerates every table/figure of the reproduction (DESIGN.md §5).
//!
//! Run with `cargo run --release -p dvv-bench --bin figures` (optionally
//! `-- --e4` etc. to select a single experiment). The captured output of
//! one run is recorded in `EXPERIMENTS.md`.

use dvv_bench::{
    a1_repair_ablation, a2_read_repair_ablation, e1_e3_figure1, e4_compare, e5_metadata,
    e6_pruning, e7_latency, e8_anomalies, e9_dvvset,
};

fn want(args: &[String], flag: &str) -> bool {
    args.is_empty() || args.iter().any(|a| a == flag)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if want(&args, "--e1") || args.iter().any(|a| a == "--figure1") {
        println!("== E1–E3 · Figure 1: two servers, three clients, three representations ==");
        println!("{}", e1_e3_figure1().render());
        println!("1b loses v2 at step v3@A; 1a and 1c keep v2 ∥ v3.\n");
    }

    if want(&args, "--e4") {
        println!("== E4 · causality verification cost (ns/op) vs number of actors ==");
        println!(
            "{}",
            e4_compare(&[2, 8, 32, 128, 512, 2048], 200_000).render()
        );
        println!("dvv is flat (one lookup); vv scales with n; histories scale with events.\n");
    }

    if want(&args, "--e5") {
        println!("== E5 · per-version causal metadata (bytes) vs concurrent clients ==");
        println!("(3 replica servers, 1 hot key, read-modify-write sessions)");
        println!("{}", e5_metadata(&[2, 4, 8, 16, 32, 64]).render());
        println!("dvv/dvvset: bounded by replication degree; vv-client: grows with clients;");
        println!("vv-server: small but UNSAFE (loses concurrent updates — see E8).\n");
    }

    if want(&args, "--e6") {
        println!("== E6 · optimistic pruning is unsafe (16 clients, 5 seeds) ==");
        println!("{}", e6_pruning(&[1, 2, 4, 8]).render());
        println!("pruning bounds the vector only by introducing anomalies; dvv is both");
        println!("small and clean.\n");
    }

    if want(&args, "--e7") {
        println!("== E7 · request latency on a bandwidth-limited network (µs) ==");
        println!("(1 MB/s links: every metadata byte costs 1 µs on the wire)");
        println!("{}", e7_latency(&[4, 16, 64]).render());
        println!("vv-client latency grows with the client population (bigger clocks on");
        println!("the wire); dvv stays flat — the paper's Riak latency result.\n");
    }

    if want(&args, "--e8") {
        println!("== E8 · causal correctness per mechanism (5 seeds, contended) ==");
        println!("{}", e8_anomalies().render());
        println!("only the mechanisms that decouple id from past (or track exact");
        println!("histories) are anomaly-free with bounded metadata.\n");
    }

    if want(&args, "--e9") {
        println!("== E9 · DVVSet ablation: one clock per sibling vs one per set ==");
        println!("{}", e9_dvvset(&[1, 2, 4, 8, 16, 32], 20_000).render());
        println!("dvvset metadata is O(servers) per *set* instead of per sibling.\n");
    }

    if want(&args, "--a1") {
        println!("== A1 · ablation: anti-entropy interval vs post-heal convergence ==");
        println!("{}", a1_repair_ablation(&[20, 50, 100, 500, 2000]).render());
        println!("convergence latency tracks the anti-entropy period.\n");
    }

    if want(&args, "--a2") {
        println!("== A2 · ablation: read repair with anti-entropy disabled ==");
        println!("{}", a2_read_repair_ablation(&[1, 2, 3, 4, 5]).render());
        println!("read repair opportunistically fixes keys that keep being read;");
        println!("neither knob affects causal correctness, only freshness.\n");
    }
}
