//! E4 — causality verification cost: the paper's O(1) dotted comparison
//! against the O(n) version-vector scan, the ordered-VV fast path, and
//! exact causal-history inclusion, swept over the number of actors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dvv_bench::{dvv_pair, history_pair, ordered_pair, vv_pair};
use std::hint::black_box;

fn bench_compare(c: &mut Criterion) {
    let mut group = c.benchmark_group("causality_check");
    for n in [2usize, 8, 32, 128, 512, 2048] {
        let (da, db) = dvv_pair(n);
        group.bench_with_input(BenchmarkId::new("dvv_precedes", n), &n, |b, _| {
            b.iter(|| black_box(&da).precedes(black_box(&db)))
        });
        let (va, vb) = vv_pair(n);
        group.bench_with_input(BenchmarkId::new("vv_dominates", n), &n, |b, _| {
            b.iter(|| black_box(&vb).dominates(black_box(&va)))
        });
        group.bench_with_input(BenchmarkId::new("vv_causal_cmp", n), &n, |b, _| {
            b.iter(|| black_box(&va).causal_cmp(black_box(&vb)))
        });
        let (oa, ob) = ordered_pair(n);
        group.bench_with_input(BenchmarkId::new("ordered_vv_fast", n), &n, |b, _| {
            b.iter(|| black_box(&oa).fast_dominated_by(black_box(&ob)))
        });
        if n <= 512 {
            let (ha, hb) = history_pair(n);
            group.bench_with_input(BenchmarkId::new("history_subset", n), &n, |b, _| {
                b.iter(|| black_box(&ha).is_subset(black_box(&hb)))
            });
        }
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700))
        .sample_size(30)
}

criterion_group!(name = benches; config = quick(); targets = bench_compare);
criterion_main!(benches);
