//! Membership hot paths: the mergeable ring-view operations every gossip
//! round leans on (merge, digest, ring rebuild) and an end-to-end live
//! join driven through the simulated store. The CI `bench-baseline` lane
//! runs this in fast mode and archives the JSON results
//! (`BENCH_membership.json`), so a regression on these paths shows up in
//! the perf trajectory rather than only under a soak run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dvv::mechanisms::DvvMechanism;
use dvv::ReplicaId;
use kvstore::cluster::{Cluster, ClusterConfig};
use kvstore::config::{ClientConfig, StoreConfig};
use ring::{MemberStatus, RingView};
use simnet::Duration;
use std::hint::black_box;

/// Two views that share `members` entries but diverge in `churn` fresh
/// announcements each — the shape a gossip exchange actually merges.
fn divergent_views(members: u32, churn: u32) -> (RingView<ReplicaId>, RingView<ReplicaId>) {
    let base: RingView<ReplicaId> = RingView::from_members((0..members).map(ReplicaId));
    let mut a = base.clone();
    let mut b = base;
    for i in 0..churn {
        let subject = ReplicaId(i % members);
        if i % 2 == 0 {
            a.bump(&subject, MemberStatus::Leaving);
        } else {
            b.bump(&subject, MemberStatus::Up);
        }
    }
    (a, b)
}

fn bench_view_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("membership_view");
    for members in [8u32, 64] {
        let (a, b) = divergent_views(members, members / 2);
        group.bench_with_input(BenchmarkId::new("merge", members), &members, |bench, _| {
            bench.iter(|| {
                let mut m = a.clone();
                m.merge(black_box(&b));
                black_box(m)
            })
        });
        group.bench_with_input(BenchmarkId::new("digest", members), &members, |bench, _| {
            bench.iter(|| black_box(a.digest()))
        });
        group.bench_with_input(
            BenchmarkId::new("to_ring", members),
            &members,
            |bench, _| bench.iter(|| black_box(a.to_ring(32)).len()),
        );
    }
    group.finish();
}

fn join_settles(seed: u64) -> bool {
    let cfg = ClusterConfig {
        servers: 3,
        spare_servers: 1,
        clients: 2,
        cycles_per_client: 5,
        store: StoreConfig {
            n: 2,
            r: 2,
            w: 2,
            anti_entropy_interval: Duration::from_millis(50),
            ..StoreConfig::default()
        },
        client: ClientConfig {
            key_count: 6,
            ..ClientConfig::default()
        },
        deadline: Duration::from_secs(1_000),
        ..ClusterConfig::default()
    };
    let mut c = Cluster::new(seed, DvvMechanism, cfg);
    c.run_for(Duration::from_millis(20));
    let settled = c.add_node_live(3);
    c.run();
    settled
}

fn bench_live_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("membership_cluster");
    group.sample_size(10);
    group.bench_function("live_join_gossip_settle", |b| {
        b.iter(|| {
            let ok = join_settles(3);
            assert!(ok, "the benchmarked join must settle");
            black_box(ok)
        })
    });
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700))
        .sample_size(30)
}

criterion_group!(name = benches; config = quick(); targets = bench_view_ops, bench_live_join);
criterion_main!(benches);
