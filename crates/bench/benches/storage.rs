//! Storage-engine lane: what the durable log costs, in isolation from
//! the protocol. Three shapes at 1k and 10k keys:
//!
//! * `append` — distinct-key inserts through the group-sync default
//!   config (the steady-state write path);
//! * `replay` — `LogEngine::open` over the resulting log (the recovery
//!   path a crashed node pays before it can rejoin);
//! * `compact` — overwrite churn against thresholds low enough that
//!   the size-triggered compactor runs repeatedly inside the measured
//!   loop (the reclaim path);
//! * `guard` — the dot-reuse epoch guard's reservation traffic laid
//!   over the append path: group-sync vs write-through durability,
//!   each with and without the guard's headroom-amortised
//!   reservation fsyncs. The guarded group-sync row is the one the
//!   acceptance bar watches — reservation overhead on the
//!   steady-state write path must stay within ~10% of unguarded.
//!
//! Timing numbers, machine-dependent: `scripts/bench_compare.sh`
//! treats deviations as warnings. Committed baseline:
//! `bench-baselines/BENCH_storage.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dvv::{DvvSet, ReplicaId};
use std::hint::black_box;
use storage::{LogConfig, LogEngine, StorageEngine};

type State = DvvSet<ReplicaId, Vec<u8>>;

const SIZES: [usize; 2] = [1_000, 10_000];

fn key(i: usize) -> Vec<u8> {
    format!("bench-key-{i:06}").into_bytes()
}

/// Group-sync defaults with compaction disabled: appends measure the
/// write path alone.
fn append_config() -> LogConfig {
    LogConfig {
        compact_min_bytes: u64::MAX,
        ..LogConfig::default()
    }
}

/// Thresholds low enough that overwrite churn compacts repeatedly.
fn churn_config() -> LogConfig {
    LogConfig {
        compact_min_bytes: 16 * 1024,
        compact_garbage_ratio: 0.5,
        ..LogConfig::default()
    }
}

fn put(engine: &mut LogEngine<State>, i: usize, payload: usize) {
    engine.apply(&key(i), &mut State::default, &mut |set| {
        let ctx = set.context();
        set.update(&ctx, ReplicaId((i % 3) as u32), vec![0xAB; payload]);
    });
}

fn fill(engine: &mut LogEngine<State>, n: usize) {
    for i in 0..n {
        put(engine, i, 32);
    }
    engine.sync();
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_log/append");
    group.sample_size(10);
    for n in SIZES {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let dir = storage::scratch_dir("bench-append");
            let mut run = 0u64;
            // The vendored criterion has no iter_batched: opening a
            // fresh empty log inside the loop is noise next to the n
            // appends being measured.
            b.iter(|| {
                run += 1;
                let path = dir.join(format!("log-{run}"));
                let mut engine = LogEngine::<State>::open(path, append_config()).expect("open log");
                fill(&mut engine, n);
                black_box(engine.stats().appends)
            });
            std::fs::remove_dir_all(&dir).ok();
        });
    }
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_log/replay");
    group.sample_size(10);
    for n in SIZES {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let dir = storage::scratch_dir("bench-replay");
            let path = dir.join("log");
            let mut engine = LogEngine::<State>::open(&path, append_config()).expect("open log");
            fill(&mut engine, n);
            drop(engine);
            b.iter(|| {
                let back = LogEngine::<State>::open(&path, append_config()).expect("reopen log");
                assert_eq!(back.len(), n, "replay must recover every key");
                black_box(back.stats().replayed_records)
            });
            std::fs::remove_dir_all(&dir).ok();
        });
    }
    group.finish();
}

/// Write-through durability with compaction disabled: every record
/// fsyncs, so reservation syncs can only add meta-record volume.
fn write_through_config() -> LogConfig {
    LogConfig {
        compact_min_bytes: u64::MAX,
        ..LogConfig::write_through()
    }
}

/// The append path with the node's minting discipline laid over it:
/// one dot per write, and before a mint may pass the durably reserved
/// ceiling a fresh reservation with `StoreConfig::dot_headroom`-sized
/// slack (1024, the default) is fsynced. Four rows: each durability
/// mode, guarded and bare — the guarded/bare ratio *is* the guard's
/// write-path overhead.
fn bench_guard(c: &mut Criterion) {
    // Mirrors `StoreConfig::default().dot_headroom`.
    const HEADROOM: u64 = 1024;
    let mut group = c.benchmark_group("storage_log/guard");
    group.sample_size(10);
    type Variant = (&'static str, fn() -> LogConfig, bool);
    let variants: [Variant; 4] = [
        ("group_sync", append_config, false),
        ("group_sync_guarded", append_config, true),
        ("write_through", write_through_config, false),
        ("write_through_guarded", write_through_config, true),
    ];
    for (name, config, guarded) in variants {
        for n in SIZES {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
                let dir = storage::scratch_dir("bench-guard");
                let mut run = 0u64;
                b.iter(|| {
                    run += 1;
                    let path = dir.join(format!("log-{run}"));
                    let mut engine = LogEngine::<State>::open(path, config()).expect("open log");
                    let (mut counter, mut ceiling) = (0u64, 0u64);
                    for i in 0..n {
                        put(&mut engine, i, 32);
                        if guarded {
                            counter += 1;
                            if counter > ceiling {
                                ceiling = counter + HEADROOM;
                                engine.store_reservation(1, ceiling);
                            }
                        }
                    }
                    engine.sync();
                    if guarded {
                        assert_eq!(engine.load_reservation(), Some((1, ceiling)));
                    }
                    black_box(engine.stats().appends)
                });
                std::fs::remove_dir_all(&dir).ok();
            });
        }
    }
    group.finish();
}

fn bench_compact(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_log/compact");
    group.sample_size(10);
    for n in SIZES {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let dir = storage::scratch_dir("bench-compact");
            let mut run = 0u64;
            b.iter(|| {
                run += 1;
                let path = dir.join(format!("log-{run}"));
                let mut engine = LogEngine::<State>::open(path, churn_config()).expect("open log");
                // n overwrites over a 64-key working set: almost every
                // record is garbage, so the low thresholds force
                // repeated compactions inside the loop.
                for i in 0..n {
                    put(&mut engine, i % 64, 64);
                }
                engine.sync();
                let stats = engine.stats();
                assert!(stats.compactions > 0, "churn must trigger compaction");
                black_box(stats.compactions)
            });
            std::fs::remove_dir_all(&dir).ok();
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700))
        .sample_size(10)
}

criterion_group!(name = benches; config = quick(); targets = bench_append, bench_replay, bench_guard, bench_compact);
criterion_main!(benches);
