//! E9 — the DVVSet ablation: one clock per sibling (list of DVVs) versus
//! one clock per sibling *set*, on update and sync.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dvv::server;
use dvv::{ClientId, ReplicaId};
use dvv_bench::sibling_fixtures;
use kvstore::{StampedValue, WriteId};
use std::hint::black_box;

fn bench_representations(c: &mut Criterion) {
    let mut group = c.benchmark_group("dvvset_vs_list");
    for siblings in [1usize, 4, 16, 64] {
        let (tagged, set) = sibling_fixtures(siblings);
        let ctx = server::context(&tagged);
        let value = StampedValue::new(WriteId::new(ClientId(9999), 1), vec![0u8; 16]);

        group.bench_with_input(
            BenchmarkId::new("list_update", siblings),
            &siblings,
            |b, _| {
                b.iter(|| {
                    let mut st = tagged.clone();
                    server::update(&mut st, black_box(&ctx), ReplicaId(1), value.clone());
                    black_box(st)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("set_update", siblings),
            &siblings,
            |b, _| {
                b.iter(|| {
                    let mut st = set.clone();
                    st.update(black_box(&ctx), ReplicaId(1), value.clone());
                    black_box(st)
                })
            },
        );

        let (tagged2, set2) = sibling_fixtures(siblings / 2 + 1);
        group.bench_with_input(
            BenchmarkId::new("list_sync", siblings),
            &siblings,
            |b, _| b.iter(|| black_box(server::sync(black_box(&tagged), black_box(&tagged2)))),
        );
        group.bench_with_input(BenchmarkId::new("set_sync", siblings), &siblings, |b, _| {
            b.iter(|| black_box(black_box(&set).sync(black_box(&set2))))
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700))
        .sample_size(30)
}

criterion_group!(name = benches; config = quick(); targets = bench_representations);
criterion_main!(benches);
