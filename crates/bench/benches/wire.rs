//! Bytes-to-convergence for the churn+heal+AAE scenario, per delta
//! policy. NOT a timing bench: the recorded quantity is wire bytes, a
//! deterministic function of the protocol (same seed, same simulator,
//! same count on every machine) — so unlike the timing lanes this
//! baseline is exactly reproducible and a regression is a protocol
//! change, not noise.
//!
//! The numbers land in the criterion JSON schema (`mean_ns` carries the
//! byte count; ids end in `_bytes` to say so) so the `bench-baseline`
//! lane's `CRITERION_JSON_OUT` flow and `scripts/bench_compare.sh` work
//! unchanged. Committed baseline: `bench-baselines/BENCH_wire.json`.
//!
//! The scenario mirrors `kvstore/tests/wire.rs`: a preloaded keyspace,
//! live churn (join + leave), four partition/divergence/heal waves
//! against one member, then an AAE quiesce — clientless and fully
//! scripted, so every run converges the identical write set.

use dvv::mechanisms::{DvvMechanism, Mechanism, WriteOrigin};
use dvv::{ClientId, ReplicaId, VersionVector};
use kvstore::cluster::{Cluster, ClusterConfig, StoreProc};
use kvstore::config::{ClientConfig, StoreConfig};
use kvstore::messages::{MsgClass, WireStats};
use kvstore::value::{Key, StampedValue, WriteId};
use kvstore::DeltaPolicy;
use ring::HashRing;
use simnet::{Duration, NodeId};
use std::collections::BTreeMap;

type M = DvvMechanism;
type State = <M as Mechanism<StampedValue>>::State;

const SEED: u64 = 31;
const SERVERS: u32 = 6;
const N: usize = 3;
const KEYS: usize = 20_000;
const DIVERGENT: usize = 10;

fn preload_state(origin: ReplicaId, key_idx: usize) -> State {
    let mech = DvvMechanism;
    let mut st = State::default();
    mech.write(
        &mut st,
        WriteOrigin::new(origin, ClientId(9_000)),
        &VersionVector::new(),
        StampedValue::new(
            WriteId::new(ClientId(9_000), key_idx as u64 + 1),
            vec![0x11; 12],
        ),
    );
    st
}

/// Read-modify-write at `origin`'s replica (see `tests/wire.rs`: a write
/// against an empty state would re-mint the preload's dot and vanish).
fn inject_write(c: &mut Cluster<M>, origin: ReplicaId, key: &Key, wave: u64, i: u64) {
    let mech = DvvMechanism;
    let client = ClientId(7_000 + wave);
    let mut st = c
        .server(origin.0 as usize)
        .data()
        .get(key)
        .cloned()
        .unwrap_or_default();
    let (_, ctx) = mech.read(&st);
    mech.write(
        &mut st,
        WriteOrigin::new(origin, client),
        &ctx,
        StampedValue::new(WriteId::new(client, i + 1), vec![0x22; 8]),
    );
    if let StoreProc::Server(s) = c.sim_mut().process_mut(origin.0 as usize) {
        s.merge_state_direct(key, &st);
    }
}

fn run_scenario(policy: DeltaPolicy) -> WireStats {
    let mut cfg = ClusterConfig {
        servers: SERVERS as usize,
        spare_servers: 1,
        clients: 0,
        cycles_per_client: 0,
        store: StoreConfig {
            n: N,
            r: 2,
            w: 2,
            anti_entropy_interval: Duration::from_millis(100),
            gossip_interval: Duration::from_millis(300),
            delta_views: policy,
            delta_aae: policy,
            ..StoreConfig::default()
        },
        client: ClientConfig::default(),
        ..ClusterConfig::default()
    };
    cfg.deadline = Duration::from_secs(2_000);
    let mut c = Cluster::new(SEED, DvvMechanism, cfg);

    let ring = HashRing::with_vnodes((0..SERVERS).map(ReplicaId), Cluster::<M>::VNODES);
    let keys: Vec<Key> = (0..KEYS)
        .map(|i| format!("user:{i:04}").into_bytes())
        .collect();
    for (i, key) in keys.iter().enumerate() {
        let prefs = ring.preference_list(key, N);
        let st = preload_state(prefs[0], i);
        for owner in prefs {
            if let StoreProc::Server(s) = c.sim_mut().process_mut(owner.0 as usize) {
                s.merge_state_direct(key, &st);
            }
        }
    }
    c.run_for(Duration::from_millis(150));

    assert!(c.add_node_live(SERVERS as usize), "join settles");
    assert!(c.remove_node_live(0), "leave settles");
    c.run_for(Duration::from_secs(1));

    let victim = ReplicaId(1);
    let post_ring = HashRing::with_vnodes((1..=SERVERS).map(ReplicaId), Cluster::<M>::VNODES);
    let bounds = post_ring.arc_bounds();
    let arc_of = |key: &Key| -> usize {
        let p = ring::hash_key(key);
        bounds.partition_point(|b| *b < p) % bounds.len()
    };
    let mut by_arc: BTreeMap<usize, Vec<Key>> = BTreeMap::new();
    for k in &keys {
        let idx = arc_of(k);
        if post_ring.arc_prefs(idx, N).contains(&victim) {
            by_arc.entry(idx).or_default().push(k.clone());
        }
    }
    let (arc, group) = by_arc
        .into_iter()
        .filter(|(_, v)| v.len() >= DIVERGENT)
        .min_by_key(|(_, v)| v.len())
        .expect("some arc replicates >= DIVERGENT keys at the victim");
    let origin = *post_ring
        .arc_prefs(arc, N)
        .iter()
        .find(|r| **r != victim)
        .unwrap();
    let divergent: Vec<Key> = group.into_iter().take(DIVERGENT).collect();

    for wave in 0..4u64 {
        let others: Vec<NodeId> = (0..SERVERS + 1).map(NodeId).filter(|n| n.0 != 1).collect();
        c.sim_mut().network_mut().partition_two(others, [NodeId(1)]);
        c.set_replica_status(victim, false);
        let writes = divergent.clone();
        for (i, key) in writes.iter().enumerate() {
            inject_write(&mut c, origin, key, wave, i as u64);
        }
        c.run_for(Duration::from_millis(400));
        c.sim_mut().network_mut().heal();
        c.set_replica_status(victim, true);
        c.run_for(Duration::from_millis(500));
    }

    c.run_for(Duration::from_secs(3));
    for i in c.member_slots() {
        assert_eq!(
            c.server(i).view_digest(),
            c.view_digest(),
            "server {i} view diverged"
        );
    }
    c.wire_report()
}

/// One record in the committed baseline schema; the `*_ns` fields carry
/// a byte count (the id says so).
fn record(out: &mut Vec<String>, id: &str, bytes: u64) {
    out.push(format!(
        "  {{\"id\": \"{id}\", \"mean_ns\": {bytes}.00, \"min_ns\": {bytes}.00, \
         \"max_ns\": {bytes}.00, \"samples\": 1, \"iters_per_sample\": 1}}"
    ));
    println!("wire: {id} = {bytes} bytes");
}

fn main() {
    // tolerate the harness-style flags cargo/ci pass (--bench, --quick):
    // the scenario is deterministic, there is no quick/full distinction
    let mut out: Vec<String> = Vec::new();
    for (name, policy) in [
        ("full", DeltaPolicy::Full),
        ("auto", DeltaPolicy::Auto),
        ("force", DeltaPolicy::Force),
    ] {
        let r = run_scenario(policy);
        let base = format!("wire/churn_heal_aae/{name}");
        record(
            &mut out,
            &format!("{base}/reconciliation_bytes"),
            r.reconciliation_bytes(),
        );
        record(
            &mut out,
            &format!("{base}/anti_entropy_bytes"),
            r.bytes(MsgClass::AntiEntropy),
        );
        record(
            &mut out,
            &format!("{base}/membership_bytes"),
            r.bytes(MsgClass::Membership),
        );
        record(&mut out, &format!("{base}/total_bytes"), r.total_bytes());
    }
    let json = format!("[\n{}\n]\n", out.join(",\n"));
    let path = std::env::var("CRITERION_JSON_OUT").unwrap_or_else(|_| "BENCH_wire.json".into());
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wire: baseline written to {path}");
}
