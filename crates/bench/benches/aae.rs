//! Anti-entropy hot paths: the per-tick cost of producing the Merkle
//! root shared with a peer (incremental per-arc assembly vs the pre-PR
//! from-scratch keyspace scan) and raw preference-list throughput
//! (arc-cache lookup vs the uncached token walk). The CI `bench-baseline`
//! lane runs this in fast mode and archives `BENCH_aae.json`;
//! `scripts/bench_compare.sh` diffs fresh numbers against the committed
//! baselines in `bench-baselines/`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dvv::mechanisms::{DvvMechanism, Mechanism, WriteOrigin};
use dvv::{ClientId, ReplicaId};
use kvstore::config::StoreConfig;
use kvstore::node::StoreNode;
use kvstore::value::{StampedValue, WriteId};
use ring::{hash_key, HashRing, RingView};
use std::hint::black_box;

type DvvState = <DvvMechanism as Mechanism<StampedValue>>::State;

/// A store node for replica 0 of an `members`-node ring, holding `keys`
/// distinct keys (whatever their ownership — exactly what a replica's
/// store looks like mid-workload), flushed, plus the first 100 states
/// for re-merging (to dirty keys between measured ticks).
fn store_with_keys(
    members: u32,
    keys: usize,
) -> (StoreNode<DvvMechanism>, Vec<(Vec<u8>, DvvState)>) {
    let view: RingView<ReplicaId> = RingView::from_members((0..members).map(ReplicaId));
    let mut node = StoreNode::new(ReplicaId(0), DvvMechanism, StoreConfig::default(), view);
    let mech = DvvMechanism;
    let ctx = <DvvMechanism as Mechanism<StampedValue>>::Context::default();
    let mut sample = Vec::new();
    for i in 0..keys {
        let key = format!("user:{i}").into_bytes();
        let mut st = DvvState::default();
        mech.write(
            &mut st,
            WriteOrigin::new(ReplicaId(0), ClientId(1)),
            &ctx,
            StampedValue::new(WriteId::new(ClientId(1), i as u64 + 1), vec![7u8; 16]),
        );
        node.merge_state_direct(&key, &st);
        if i < 100 {
            sample.push((key, st));
        }
    }
    node.flush_aae_index();
    (node, sample)
}

fn bench_aae_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("aae_tick");
    group.sample_size(10);
    for (members, keys) in [(8u32, 1_000usize), (8, 10_000), (64, 10_000)] {
        let (mut node, sample) = store_with_keys(members, keys);
        let peer = ReplicaId(1);
        let label = format!("{keys}keys_{members}members");
        // steady-state tick: nothing dirty — select shared arcs, XOR
        // their cached roots (what every AaeRoot receipt costs too)
        group.bench_with_input(
            BenchmarkId::new("incremental_root", &label),
            &label,
            |b, _| b.iter(|| black_box(node.shared_summary_root(black_box(peer)))),
        );
        // tick after a write burst: 100 keys dirtied since the last
        // flush — re-fingerprint those, then XOR the arc roots
        group.bench_with_input(
            BenchmarkId::new("incremental_root_100dirty", &label),
            &label,
            |b, _| {
                b.iter(|| {
                    for (k, st) in &sample {
                        node.merge_state_direct(k, st);
                    }
                    node.flush_aae_index();
                    black_box(node.shared_summary_root(black_box(peer)))
                })
            },
        );
        // the pre-PR implementation: hash every key, walk the token map,
        // rehash every shared state
        group.bench_with_input(BenchmarkId::new("rebuild_root", &label), &label, |b, _| {
            b.iter(|| black_box(node.rebuild_shared_summary(black_box(peer)).root()))
        });
    }
    group.finish();
}

fn bench_preference_lists(c: &mut Criterion) {
    let mut group = c.benchmark_group("preference_list");
    for members in [8u32, 64] {
        let ring: HashRing<ReplicaId> = HashRing::with_vnodes((0..members).map(ReplicaId), 32);
        let points: Vec<u64> = (0..1024)
            .map(|i| hash_key(format!("k{i}").as_bytes()))
            .collect();
        group.bench_with_input(BenchmarkId::new("cached", members), &members, |b, _| {
            b.iter(|| {
                let mut acc = 0usize;
                for p in &points {
                    acc += ring.preference_list_at(*p, 3).len();
                }
                black_box(acc)
            })
        });
        group.bench_with_input(
            BenchmarkId::new("uncached_walk", members),
            &members,
            |b, _| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for p in &points {
                        acc += ring.walk_preference_list_at(*p, 3).len();
                    }
                    black_box(acc)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("contains", members), &members, |b, _| {
            let me = ReplicaId(0);
            b.iter(|| {
                let mut acc = 0usize;
                for p in &points {
                    acc += usize::from(ring.preference_list_contains(*p, 3, &me));
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("primary_at", members), &members, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for p in &points {
                    acc += ring.primary_at(*p).map_or(0, |r| u64::from(r.0));
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700))
        .sample_size(30)
}

criterion_group!(name = benches; config = quick(); targets = bench_aae_tick, bench_preference_lists);
criterion_main!(benches);
