//! Server-side operation cost: `update` (coordinate a write) and `sync`
//! (merge replica states) as the sibling set grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dvv::server;
use dvv::{ClientId, ReplicaId, VersionVector};
use dvv_bench::sibling_fixtures;
use kvstore::{StampedValue, WriteId};
use std::hint::black_box;

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_update");
    for siblings in [0usize, 1, 4, 16, 64] {
        let (tagged, _) = sibling_fixtures(siblings);
        let ctx = server::context(&tagged);
        let value = StampedValue::new(WriteId::new(ClientId(9999), 1), vec![0u8; 16]);
        group.bench_with_input(
            BenchmarkId::new("resolving_write", siblings),
            &siblings,
            |b, _| {
                b.iter(|| {
                    let mut st = tagged.clone();
                    server::update(&mut st, black_box(&ctx), ReplicaId(1), value.clone());
                    black_box(st)
                })
            },
        );
        let empty = VersionVector::new();
        group.bench_with_input(
            BenchmarkId::new("blind_write", siblings),
            &siblings,
            |b, _| {
                b.iter(|| {
                    let mut st = tagged.clone();
                    server::update(&mut st, black_box(&empty), ReplicaId(1), value.clone());
                    black_box(st)
                })
            },
        );
    }
    group.finish();
}

fn bench_sync(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_sync");
    for siblings in [1usize, 4, 16, 64] {
        let (a, _) = sibling_fixtures(siblings);
        let (b_state, _) = sibling_fixtures(siblings / 2 + 1);
        group.bench_with_input(BenchmarkId::new("sync", siblings), &siblings, |b, _| {
            b.iter(|| black_box(server::sync(black_box(&a), black_box(&b_state))))
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700))
        .sample_size(30)
}

criterion_group!(name = benches; config = quick(); targets = bench_update, bench_sync);
criterion_main!(benches);
