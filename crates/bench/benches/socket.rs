//! Closed-loop throughput and tail latency over the real TCP socket
//! driver, side by side with the in-process threaded runtime on the
//! identical fleet shape — what framing, serialisation and loopback
//! TCP cost relative to passing `Msg` values through channels.
//!
//! 32 closed-loop clients (zero think time) hammer a 4-server fleet.
//! Latencies come from the clients' own round-trip histograms (µs);
//! throughput is completed ops over the run's wall clock.
//!
//! Timing numbers, therefore machine-dependent — `bench_compare.sh`
//! treats deviations as warnings, not failures. Committed baseline:
//! `bench-baselines/BENCH_socket.json`.

use std::time::Duration as StdDuration;

use dvv::mechanisms::DvvMechanism;
use kvstore::config::{ClientConfig, StoreConfig};
use kvstore::harness::FleetHarness;
use runtime::{RuntimeConfig, RuntimeFleet};
use simnet::Duration;
use transport::{SocketConfig, SocketFleet};
use workloads::Histogram;

const SEED: u64 = 97;
const SERVERS: usize = 4;
const CLIENTS: usize = 32;
const CYCLES: u32 = 40;

fn store_config() -> StoreConfig {
    StoreConfig {
        request_timeout: Duration::from_millis(250),
        anti_entropy_interval: Duration::from_millis(50),
        gossip_interval: Duration::from_millis(100),
        ..StoreConfig::default()
    }
}

fn client_config() -> ClientConfig {
    ClientConfig {
        think_time: Duration::ZERO,
        key_count: 64,
        request_timeout: Duration::from_millis(500),
        ..ClientConfig::default()
    }
}

fn record(out: &mut Vec<String>, id: &str, v: u64) {
    out.push(format!(
        "  {{\"id\": \"{id}\", \"mean_ns\": {v}.00, \"min_ns\": {v}.00, \
         \"max_ns\": {v}.00, \"samples\": 1, \"iters_per_sample\": 1}}"
    ));
    println!("socket: {id} = {v}");
}

fn emit(out: &mut Vec<String>, driver: &str, elapsed: StdDuration, ops: u64, rtt: &Histogram) {
    let secs = elapsed.as_secs_f64().max(1e-9);
    let ops_per_sec = (ops as f64 / secs).round() as u64;
    let base = format!("socket/closed_loop/s{SERVERS}_c{CLIENTS}/{driver}");
    record(out, &format!("{base}/ops_per_sec"), ops_per_sec);
    record(out, &format!("{base}/p50_us"), rtt.percentile(0.50));
    record(out, &format!("{base}/p99_us"), rtt.percentile(0.99));
    record(out, &format!("{base}/p999_us"), rtt.percentile(0.999));
}

fn main() {
    // tolerate harness-style flags (--bench, --quick): one closed-loop
    // run per driver is already the measurement
    let mut out: Vec<String> = Vec::new();

    // Real TCP sockets: framed wire codec, loopback connections.
    {
        let mut fleet = SocketFleet::new(
            SEED,
            DvvMechanism,
            SocketConfig {
                servers: SERVERS,
                clients: CLIENTS,
                cycles_per_client: CYCLES,
                store: store_config(),
                client: client_config(),
                stall_budget: StdDuration::from_secs(20),
                run_budget: StdDuration::from_secs(120),
                // Throughput lane: measure to the last op, skip settling.
                quiesce: StdDuration::ZERO,
                ..SocketConfig::default()
            },
        );
        let report = fleet
            .run()
            .unwrap_or_else(|stall| panic!("socket bench stalled:\n{stall}"));
        let lat = fleet.latency_report();
        let mut rtt = Histogram::new();
        rtt.merge(&lat.get);
        rtt.merge(&lat.put);
        assert!(report.all_done && rtt.count() > 0, "bench run incomplete");
        emit(&mut out, "tcp", report.elapsed, report.ops_ok, &rtt);
    }

    // The in-process threaded runtime on the identical shape — the
    // serialisation-free comparison point.
    {
        let mut fleet = RuntimeFleet::new(
            SEED,
            DvvMechanism,
            RuntimeConfig {
                servers: SERVERS,
                clients: CLIENTS,
                client_workers: 4,
                cycles_per_client: CYCLES,
                store: store_config(),
                client: client_config(),
                stall_budget: StdDuration::from_secs(20),
                run_budget: StdDuration::from_secs(120),
                quiesce: StdDuration::ZERO,
                ..RuntimeConfig::default()
            },
        );
        let report = fleet
            .run()
            .unwrap_or_else(|stall| panic!("threaded comparison stalled:\n{stall}"));
        let lat = fleet.latency_report();
        let mut rtt = Histogram::new();
        rtt.merge(&lat.get);
        rtt.merge(&lat.put);
        assert!(report.all_done && rtt.count() > 0, "bench run incomplete");
        emit(&mut out, "threaded", report.elapsed, report.ops_ok, &rtt);
    }

    let json = format!("[\n{}\n]\n", out.join(",\n"));
    let path = std::env::var("CRITERION_JSON_OUT").unwrap_or_else(|_| "BENCH_socket.json".into());
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("socket: baseline written to {path}");
}
