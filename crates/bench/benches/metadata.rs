//! E5 companion — the CPU side of metadata handling: encoding clocks and
//! computing read contexts as the number of entries grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dvv::encode::{to_bytes, Encode};
use dvv::server;
use dvv::{ClientId, VersionVector};
use dvv_bench::{dvv_pair, sibling_fixtures, vv_pair};
use std::hint::black_box;

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("clock_encode");
    for n in [2usize, 8, 32, 128, 512] {
        let (_, vv) = vv_pair(n);
        group.bench_with_input(BenchmarkId::new("vv", n), &n, |b, _| {
            b.iter(|| to_bytes(black_box(&vv)))
        });
        let (_, dvv) = dvv_pair(n);
        group.bench_with_input(BenchmarkId::new("dvv", n), &n, |b, _| {
            b.iter(|| to_bytes(black_box(&dvv)))
        });
        group.bench_with_input(BenchmarkId::new("vv_encoded_len", n), &n, |b, _| {
            b.iter(|| black_box(&vv).encoded_len())
        });
    }
    group.finish();
}

fn bench_context(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_context");
    for siblings in [1usize, 2, 4, 8, 16, 32] {
        let (tagged, set) = sibling_fixtures(siblings);
        group.bench_with_input(
            BenchmarkId::new("dvv_list_context", siblings),
            &siblings,
            |b, _| b.iter(|| server::context(black_box(&tagged))),
        );
        group.bench_with_input(
            BenchmarkId::new("dvvset_context", siblings),
            &siblings,
            |b, _| b.iter(|| black_box(&set).context()),
        );
    }
    group.finish();
}

fn bench_client_vv_growth(c: &mut Criterion) {
    // the comparison cost a per-client VV store pays as vectors grow
    let mut group = c.benchmark_group("per_client_vv_dominance");
    for clients in [4usize, 32, 256, 2048] {
        let big: VersionVector<ClientId> =
            (0..clients as u64).map(|i| (ClientId(i), 3u64)).collect();
        let mut bigger = big.clone();
        bigger.set(ClientId(0), 4);
        group.bench_with_input(BenchmarkId::new("dominates", clients), &clients, |b, _| {
            b.iter(|| black_box(&bigger).dominates(black_box(&big)))
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700))
        .sample_size(30)
}

criterion_group!(name = benches; config = quick(); targets = bench_encode, bench_context, bench_client_vv_growth);
criterion_main!(benches);
