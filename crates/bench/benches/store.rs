//! E7 companion — end-to-end simulated store runs per mechanism: wall
//! time of a whole deterministic workload (the simulator is CPU-bound, so
//! this measures the mechanism's total computational overhead in situ).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dvv::mechanisms::{DvvMechanism, DvvSetMechanism, Mechanism, VvClientMechanism};
use kvstore::cluster::{Cluster, ClusterConfig};
use kvstore::config::ClientConfig;
use kvstore::StampedValue;
use simnet::Duration;
use std::hint::black_box;

fn workload() -> ClusterConfig {
    ClusterConfig {
        servers: 3,
        clients: 8,
        cycles_per_client: 10,
        client: ClientConfig {
            key_count: 4,
            think_time: Duration::from_micros(300),
            ..ClientConfig::default()
        },
        ..ClusterConfig::default()
    }
}

fn run_once<M: Mechanism<StampedValue>>(mech: M, seed: u64) -> u64 {
    let mut c = Cluster::new(seed, mech, workload());
    c.run();
    c.sim().network().stats().delivered
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_run");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("mechanism", "dvv"), &0, |b, _| {
        b.iter(|| black_box(run_once(DvvMechanism, 3)))
    });
    group.bench_with_input(BenchmarkId::new("mechanism", "dvvset"), &0, |b, _| {
        b.iter(|| black_box(run_once(DvvSetMechanism, 3)))
    });
    group.bench_with_input(BenchmarkId::new("mechanism", "vv-client"), &0, |b, _| {
        b.iter(|| black_box(run_once(VvClientMechanism::unbounded(), 3)))
    });
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700))
        .sample_size(30)
}

criterion_group!(name = benches; config = quick(); targets = bench_store);
criterion_main!(benches);
