//! Sustained throughput and tail latency on the multi-threaded runtime:
//! the performance story the discrete-event simulator cannot tell.
//!
//! 128 closed-loop clients (zero think time) hammer a 4-server fleet;
//! the client sessions are partitioned across 1, 4 and 8 worker threads
//! to show how op rate and p50/p99/p999 move with real parallelism.
//! Latencies come from the clients' own round-trip histograms (µs);
//! throughput is completed ops over the run's wall clock.
//!
//! Unlike the wire baseline these numbers are *timing* and therefore
//! machine-dependent — `scripts/bench_compare.sh` treats deviations as
//! warnings, not failures. Committed baseline:
//! `bench-baselines/BENCH_runtime.json`.

use std::time::Duration as StdDuration;

use dvv::mechanisms::DvvMechanism;
use kvstore::config::{ClientConfig, StoreConfig};
use kvstore::harness::FleetHarness;
use runtime::{RuntimeConfig, RuntimeFleet};
use simnet::Duration;
use workloads::Histogram;

const SEED: u64 = 97;
const SERVERS: usize = 4;
const CLIENTS: usize = 128;
const CYCLES: u32 = 40;

fn config(workers: usize) -> RuntimeConfig {
    RuntimeConfig {
        servers: SERVERS,
        clients: CLIENTS,
        client_workers: workers,
        cycles_per_client: CYCLES,
        store: StoreConfig {
            request_timeout: Duration::from_millis(250),
            anti_entropy_interval: Duration::from_millis(50),
            gossip_interval: Duration::from_millis(100),
            ..StoreConfig::default()
        },
        client: ClientConfig {
            think_time: Duration::ZERO,
            key_count: 64,
            request_timeout: Duration::from_millis(500),
            ..ClientConfig::default()
        },
        stall_budget: StdDuration::from_secs(20),
        run_budget: StdDuration::from_secs(120),
        // Throughput lane: measure to the last client op, skip settling.
        quiesce: StdDuration::ZERO,
        ..RuntimeConfig::default()
    }
}

fn record(out: &mut Vec<String>, id: &str, v: u64) {
    out.push(format!(
        "  {{\"id\": \"{id}\", \"mean_ns\": {v}.00, \"min_ns\": {v}.00, \
         \"max_ns\": {v}.00, \"samples\": 1, \"iters_per_sample\": 1}}"
    ));
    println!("runtime: {id} = {v}");
}

fn main() {
    // tolerate harness-style flags (--bench, --quick): one closed-loop
    // run per worker count is already the measurement
    let mut out: Vec<String> = Vec::new();
    for workers in [1usize, 4, 8] {
        let mut fleet = RuntimeFleet::new(SEED, DvvMechanism, config(workers));
        let report = fleet
            .run()
            .unwrap_or_else(|stall| panic!("runtime bench stalled (w={workers}):\n{stall}"));
        let lat = fleet.latency_report();
        let mut rtt = Histogram::new();
        rtt.merge(&lat.get);
        rtt.merge(&lat.put);
        assert!(report.all_done && rtt.count() > 0, "bench run incomplete");

        let secs = report.elapsed.as_secs_f64().max(1e-9);
        let ops_per_sec = (report.ops_ok as f64 / secs).round() as u64;
        let base = format!("runtime/closed_loop/s{SERVERS}_c{CLIENTS}/w{workers}");
        record(&mut out, &format!("{base}/ops_per_sec"), ops_per_sec);
        record(&mut out, &format!("{base}/p50_us"), rtt.percentile(0.50));
        record(&mut out, &format!("{base}/p99_us"), rtt.percentile(0.99));
        record(&mut out, &format!("{base}/p999_us"), rtt.percentile(0.999));
    }
    let json = format!("[\n{}\n]\n", out.join(",\n"));
    let path = std::env::var("CRITERION_JSON_OUT").unwrap_or_else(|_| "BENCH_runtime.json".into());
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("runtime: baseline written to {path}");
}
