//! # simnet — a deterministic discrete-event network simulator
//!
//! The paper's evaluation embeds its clocks in a Dynamo-style store (a
//! modified Riak). This crate is the substrate that stands in for the
//! authors' testbed: a single-threaded, fully deterministic discrete-event
//! simulator with
//!
//! * virtual time ([`SimTime`]) with microsecond resolution,
//! * an event queue with stable FIFO tie-breaking ([`queue::EventQueue`]),
//! * a message-passing [`Network`] with pluggable latency distributions,
//!   bandwidth (so *metadata size translates into latency* — the E7
//!   experiment), loss, and partitions,
//! * seeded, splittable randomness ([`rng::SimRng`]) so every run is
//!   reproducible from one `u64` seed, and
//! * a [`Simulation`] driver hosting user-defined [`Process`]es.
//!
//! Determinism policy: no wall-clock, no `HashMap` iteration in scheduling
//! paths, one RNG stream per concern, and total ordering of simultaneous
//! events by insertion sequence.
//!
//! ## Example: ping-pong
//!
//! ```
//! use simnet::{NodeId, Process, ProcessCtx, Simulation, NetworkConfig};
//!
//! struct Ping;
//! impl Process for Ping {
//!     type Msg = u64;
//!     fn on_start(&mut self, ctx: &mut ProcessCtx<'_, u64>) {
//!         if ctx.id() == NodeId(0) {
//!             ctx.send(NodeId(1), 1, 8);
//!         }
//!     }
//!     fn on_message(&mut self, ctx: &mut ProcessCtx<'_, u64>, from: NodeId, msg: u64) {
//!         if msg < 4 {
//!             ctx.send(from, msg + 1, 8);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(42, NetworkConfig::default(), vec![Ping, Ping]);
//! sim.run_to_quiescence();
//! assert_eq!(sim.network().stats().delivered, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod latency;
pub mod net;
pub mod queue;
pub mod rng;
pub mod sim;
pub mod time;
pub mod trace;

pub use latency::LatencyModel;
pub use net::{FaultVerdict, LinkConfig, LinkFaults, Network, NetworkConfig, NetworkStats, NodeId};
pub use rng::SimRng;
pub use sim::{Process, ProcessCtx, Simulation, TimerId};
pub use time::{Duration, SimTime};
pub use trace::{Trace, TraceEvent};
