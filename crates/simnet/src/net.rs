//! The simulated [`Network`]: latency, bandwidth, loss, and partitions.

use core::fmt;
use std::collections::{BTreeMap, BTreeSet};

use crate::latency::LatencyModel;
use crate::rng::SimRng;
use crate::time::Duration;

/// Identifier of a simulated node (dense, starting at 0).
///
/// # Examples
///
/// ```
/// use simnet::NodeId;
/// assert_eq!(NodeId(3).to_string(), "n3");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Per-link transmission characteristics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkConfig {
    /// Propagation-delay distribution.
    pub latency: LatencyModel,
    /// Link bandwidth in bytes per second; `None` means infinite (message
    /// size does not affect delay). Finite bandwidth is how metadata size
    /// becomes latency in experiment E7.
    pub bandwidth: Option<u64>,
    /// Independent probability that a message is silently lost.
    pub drop_probability: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency: LatencyModel::default(),
            bandwidth: None,
            drop_probability: 0.0,
        }
    }
}

impl LinkConfig {
    /// Total transfer delay for a message of `bytes`.
    fn delay(&self, bytes: usize, rng: &mut SimRng) -> Duration {
        let prop = self.latency.sample(rng);
        match self.bandwidth {
            Some(bw) if bw > 0 => {
                let tx_us = (bytes as u128 * 1_000_000 / bw as u128) as u64;
                prop + Duration::from_micros(tx_us)
            }
            _ => prop,
        }
    }
}

/// Whole-network configuration: a default link plus per-pair overrides.
#[derive(Clone, Debug, Default)]
pub struct NetworkConfig {
    /// Characteristics used for any pair without an override.
    pub default_link: LinkConfig,
    /// Directed per-pair overrides.
    pub overrides: BTreeMap<(NodeId, NodeId), LinkConfig>,
}

impl NetworkConfig {
    /// Uniform configuration with the given link everywhere.
    #[must_use]
    pub fn uniform(link: LinkConfig) -> Self {
        NetworkConfig {
            default_link: link,
            overrides: BTreeMap::new(),
        }
    }

    /// Sets a directed override for `from → to`.
    pub fn set_link(&mut self, from: NodeId, to: NodeId, link: LinkConfig) -> &mut Self {
        self.overrides.insert((from, to), link);
        self
    }
}

/// Counters the network maintains across a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Messages accepted for transmission.
    pub sent: u64,
    /// Messages delivered to their destination.
    pub delivered: u64,
    /// Messages lost to random drop.
    pub dropped: u64,
    /// Messages refused because of a partition or blocked link.
    pub unreachable: u64,
    /// Total payload bytes accepted for transmission.
    pub bytes_sent: u64,
    /// Total payload bytes delivered.
    pub bytes_delivered: u64,
}

/// The simulated network fabric.
///
/// The network does not store messages itself; the [`crate::Simulation`]
/// asks it for a delivery verdict ([`Network::transmit`]) and schedules the
/// delivery event. Partitions and blocked links are dynamic.
#[derive(Debug)]
pub struct Network {
    config: NetworkConfig,
    rng: SimRng,
    /// When `Some`, only nodes in the same group can communicate.
    partition: Option<Vec<BTreeSet<NodeId>>>,
    /// Directed links administratively blocked.
    blocked: BTreeSet<(NodeId, NodeId)>,
    stats: NetworkStats,
}

/// Verdict for one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transmit {
    /// Deliver after this delay.
    Deliver(Duration),
    /// Silently lost (drop probability).
    Dropped,
    /// No route (partition or blocked link).
    Unreachable,
}

impl Network {
    /// Creates a network with the given configuration and RNG stream.
    #[must_use]
    pub fn new(config: NetworkConfig, rng: SimRng) -> Self {
        Network {
            config,
            rng,
            partition: None,
            blocked: BTreeSet::new(),
            stats: NetworkStats::default(),
        }
    }

    /// Decides the fate of one message of `bytes` from `from` to `to`.
    pub fn transmit(&mut self, from: NodeId, to: NodeId, bytes: usize) -> Transmit {
        self.stats.sent += 1;
        self.stats.bytes_sent += bytes as u64;
        if !self.reachable(from, to) {
            self.stats.unreachable += 1;
            return Transmit::Unreachable;
        }
        let link = self
            .config
            .overrides
            .get(&(from, to))
            .copied()
            .unwrap_or(self.config.default_link);
        if self.rng.chance(link.drop_probability) {
            self.stats.dropped += 1;
            return Transmit::Dropped;
        }
        Transmit::Deliver(link.delay(bytes, &mut self.rng))
    }

    /// Records a completed delivery (called by the simulation driver).
    pub fn record_delivery(&mut self, bytes: usize) {
        self.stats.delivered += 1;
        self.stats.bytes_delivered += bytes as u64;
    }

    /// Whether `from` can currently reach `to`.
    #[must_use]
    pub fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true;
        }
        if self.blocked.contains(&(from, to)) {
            return false;
        }
        match &self.partition {
            None => true,
            Some(groups) => groups.iter().any(|g| g.contains(&from) && g.contains(&to)),
        }
    }

    /// Splits the network into isolated groups. Nodes absent from every
    /// group are isolated entirely.
    pub fn partition(&mut self, groups: Vec<BTreeSet<NodeId>>) {
        self.partition = Some(groups);
    }

    /// Convenience: splits into exactly two sides.
    pub fn partition_two(
        &mut self,
        side_a: impl IntoIterator<Item = NodeId>,
        side_b: impl IntoIterator<Item = NodeId>,
    ) {
        self.partition(vec![
            side_a.into_iter().collect(),
            side_b.into_iter().collect(),
        ]);
    }

    /// Removes any partition.
    pub fn heal(&mut self) {
        self.partition = None;
    }

    /// Administratively blocks the directed link `from → to`.
    pub fn block_link(&mut self, from: NodeId, to: NodeId) {
        self.blocked.insert((from, to));
    }

    /// Unblocks the directed link.
    pub fn unblock_link(&mut self, from: NodeId, to: NodeId) {
        self.blocked.remove(&(from, to));
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(link: LinkConfig) -> Network {
        Network::new(NetworkConfig::uniform(link), SimRng::new(1))
    }

    #[test]
    fn default_link_delivers_with_latency() {
        let mut n = net(LinkConfig::default());
        match n.transmit(NodeId(0), NodeId(1), 100) {
            Transmit::Deliver(d) => assert_eq!(d, Duration::from_micros(500)),
            other => panic!("expected delivery, got {other:?}"),
        }
        assert_eq!(n.stats().sent, 1);
        assert_eq!(n.stats().bytes_sent, 100);
    }

    #[test]
    fn bandwidth_adds_size_proportional_delay() {
        let link = LinkConfig {
            latency: LatencyModel::Constant(Duration::from_micros(100)),
            bandwidth: Some(1_000_000), // 1 MB/s → 1µs per byte
            drop_probability: 0.0,
        };
        let mut n = net(link);
        let small = match n.transmit(NodeId(0), NodeId(1), 10) {
            Transmit::Deliver(d) => d,
            _ => unreachable!(),
        };
        let big = match n.transmit(NodeId(0), NodeId(1), 10_000) {
            Transmit::Deliver(d) => d,
            _ => unreachable!(),
        };
        assert_eq!(small, Duration::from_micros(110));
        assert_eq!(big, Duration::from_micros(10_100));
    }

    #[test]
    fn drop_probability_loses_messages() {
        let link = LinkConfig {
            drop_probability: 1.0,
            ..LinkConfig::default()
        };
        let mut n = net(link);
        assert_eq!(n.transmit(NodeId(0), NodeId(1), 1), Transmit::Dropped);
        assert_eq!(n.stats().dropped, 1);
    }

    #[test]
    fn partition_blocks_cross_group_traffic() {
        let mut n = net(LinkConfig::default());
        n.partition_two([NodeId(0), NodeId(1)], [NodeId(2)]);
        assert!(n.reachable(NodeId(0), NodeId(1)));
        assert!(!n.reachable(NodeId(0), NodeId(2)));
        assert_eq!(n.transmit(NodeId(0), NodeId(2), 1), Transmit::Unreachable);
        assert_eq!(n.stats().unreachable, 1);
        n.heal();
        assert!(n.reachable(NodeId(0), NodeId(2)));
    }

    #[test]
    fn isolated_node_unreachable_but_self_reachable() {
        let mut n = net(LinkConfig::default());
        n.partition(vec![[NodeId(0)].into_iter().collect()]);
        assert!(!n.reachable(NodeId(0), NodeId(9)));
        assert!(n.reachable(NodeId(9), NodeId(9)), "self-loop always works");
    }

    #[test]
    fn blocked_links_are_directed() {
        let mut n = net(LinkConfig::default());
        n.block_link(NodeId(0), NodeId(1));
        assert!(!n.reachable(NodeId(0), NodeId(1)));
        assert!(n.reachable(NodeId(1), NodeId(0)));
        n.unblock_link(NodeId(0), NodeId(1));
        assert!(n.reachable(NodeId(0), NodeId(1)));
    }

    #[test]
    fn overrides_take_precedence() {
        let mut cfg = NetworkConfig::uniform(LinkConfig::default());
        cfg.set_link(
            NodeId(0),
            NodeId(1),
            LinkConfig {
                latency: LatencyModel::Constant(Duration::from_millis(9)),
                ..LinkConfig::default()
            },
        );
        let mut n = Network::new(cfg, SimRng::new(2));
        match n.transmit(NodeId(0), NodeId(1), 1) {
            Transmit::Deliver(d) => assert_eq!(d, Duration::from_millis(9)),
            other => panic!("{other:?}"),
        }
        // reverse direction uses the default
        match n.transmit(NodeId(1), NodeId(0), 1) {
            Transmit::Deliver(d) => assert_eq!(d, Duration::from_micros(500)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn record_delivery_updates_stats() {
        let mut n = net(LinkConfig::default());
        n.transmit(NodeId(0), NodeId(1), 64);
        n.record_delivery(64);
        assert_eq!(n.stats().delivered, 1);
        assert_eq!(n.stats().bytes_delivered, 64);
    }
}
