//! The simulated [`Network`]: latency, bandwidth, loss, and partitions.

use core::fmt;
use std::collections::{BTreeMap, BTreeSet};

use crate::latency::LatencyModel;
use crate::rng::SimRng;
use crate::time::Duration;

/// Identifier of a simulated node (dense, starting at 0).
///
/// # Examples
///
/// ```
/// use simnet::NodeId;
/// assert_eq!(NodeId(3).to_string(), "n3");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Adversarial fault-injection knobs of one link, beyond loss: message
/// duplication, reordering, and stale replay. All probabilities are
/// independent per message and drawn from the network's seeded RNG, so
/// a hostile run is exactly as reproducible as a clean one.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFaults {
    /// Probability a delivered message is delivered *twice* (the copy
    /// gets an independently sampled delay, so the duplicate usually
    /// also arrives out of order).
    pub duplicate_probability: f64,
    /// Probability a delivered message is held back by an extra delay
    /// uniform in `[0, reorder_window]` — enough to slip behind later
    /// traffic on the same link.
    pub reorder_probability: f64,
    /// Upper bound of the extra reordering delay.
    pub reorder_window: Duration,
    /// Probability that, on a delivery, one previously captured frame
    /// from the same link is re-delivered — a *stale replay*: the frame
    /// may be arbitrarily old, testing that handlers tolerate ancient
    /// state resurfacing after the conversation has moved on.
    pub replay_probability: f64,
    /// How long after the triggering delivery the stale copy lands.
    pub replay_delay: Duration,
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults {
            duplicate_probability: 0.0,
            reorder_probability: 0.0,
            reorder_window: Duration::ZERO,
            replay_probability: 0.0,
            replay_delay: Duration::ZERO,
        }
    }
}

impl LinkFaults {
    /// Whether every fault class is switched off.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.duplicate_probability <= 0.0
            && self.reorder_probability <= 0.0
            && self.replay_probability <= 0.0
    }

    /// The standard *hostile* profile the `NET_FAULTS=hostile` suites
    /// run under: heavy duplication, aggressive reordering, and stale
    /// replay on every link. Protocol handlers must be idempotent and
    /// commutative to converge under this.
    #[must_use]
    pub fn hostile() -> Self {
        LinkFaults {
            duplicate_probability: 0.15,
            reorder_probability: 0.25,
            reorder_window: Duration::from_millis(4),
            replay_probability: 0.05,
            replay_delay: Duration::from_millis(8),
        }
    }
}

/// Per-link transmission characteristics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkConfig {
    /// Propagation-delay distribution.
    pub latency: LatencyModel,
    /// Link bandwidth in bytes per second; `None` means infinite (message
    /// size does not affect delay). Finite bandwidth is how metadata size
    /// becomes latency in experiment E7.
    pub bandwidth: Option<u64>,
    /// Independent probability that a message is silently lost.
    pub drop_probability: f64,
    /// Adversarial faults injected on this link (duplication, reorder,
    /// stale replay) — all off by default.
    pub faults: LinkFaults,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency: LatencyModel::default(),
            bandwidth: None,
            drop_probability: 0.0,
            faults: LinkFaults::default(),
        }
    }
}

impl LinkConfig {
    /// Total transfer delay for a message of `bytes`.
    fn delay(&self, bytes: usize, rng: &mut SimRng) -> Duration {
        let prop = self.latency.sample(rng);
        match self.bandwidth {
            Some(bw) if bw > 0 => {
                let tx_us = (bytes as u128 * 1_000_000 / bw as u128) as u64;
                prop + Duration::from_micros(tx_us)
            }
            _ => prop,
        }
    }
}

/// Whole-network configuration: a default link plus per-pair overrides.
#[derive(Clone, Debug, Default)]
pub struct NetworkConfig {
    /// Characteristics used for any pair without an override.
    pub default_link: LinkConfig,
    /// Directed per-pair overrides.
    pub overrides: BTreeMap<(NodeId, NodeId), LinkConfig>,
}

impl NetworkConfig {
    /// Uniform configuration with the given link everywhere.
    #[must_use]
    pub fn uniform(link: LinkConfig) -> Self {
        NetworkConfig {
            default_link: link,
            overrides: BTreeMap::new(),
        }
    }

    /// Sets a directed override for `from → to`.
    pub fn set_link(&mut self, from: NodeId, to: NodeId, link: LinkConfig) -> &mut Self {
        self.overrides.insert((from, to), link);
        self
    }
}

/// Counters the network maintains across a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Messages accepted for transmission.
    pub sent: u64,
    /// Messages delivered to their destination.
    pub delivered: u64,
    /// Messages lost to random drop.
    pub dropped: u64,
    /// Messages refused because of a partition or blocked link.
    pub unreachable: u64,
    /// Total payload bytes accepted for transmission.
    pub bytes_sent: u64,
    /// Total payload bytes delivered.
    pub bytes_delivered: u64,
    /// Extra copies injected by duplication faults.
    pub duplicated: u64,
    /// Messages held back by a reordering delay.
    pub reordered: u64,
    /// Stale captured frames re-delivered by replay faults.
    pub replayed: u64,
}

/// The simulated network fabric.
///
/// The network does not store messages itself; the [`crate::Simulation`]
/// asks it for a delivery verdict ([`Network::transmit`]) and schedules the
/// delivery event. Partitions and blocked links are dynamic.
#[derive(Debug)]
pub struct Network {
    config: NetworkConfig,
    rng: SimRng,
    /// When `Some`, only nodes in the same group can communicate.
    partition: Option<Vec<BTreeSet<NodeId>>>,
    /// Directed links administratively blocked.
    blocked: BTreeSet<(NodeId, NodeId)>,
    stats: NetworkStats,
}

/// Verdict for one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transmit {
    /// Deliver after this delay.
    Deliver(Duration),
    /// Silently lost (drop probability).
    Dropped,
    /// No route (partition or blocked link).
    Unreachable,
}

/// Post-delivery fault rolls for one deliverable message
/// ([`Network::fault_verdict`]). The driver owns the replay stash, so
/// the network only says *what* to do, never holds the frames.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultVerdict {
    /// Inject a second copy of this message after this delay.
    pub duplicate_delay: Option<Duration>,
    /// Capture this frame into the link's replay stash.
    pub capture: bool,
    /// Re-deliver one captured frame: `(raw_pick, delay)` — the driver
    /// reduces `raw_pick` modulo its stash size to choose which.
    pub replay: Option<(u64, Duration)>,
}

impl Network {
    /// Creates a network with the given configuration and RNG stream.
    #[must_use]
    pub fn new(config: NetworkConfig, rng: SimRng) -> Self {
        Network {
            config,
            rng,
            partition: None,
            blocked: BTreeSet::new(),
            stats: NetworkStats::default(),
        }
    }

    fn link(&self, from: NodeId, to: NodeId) -> LinkConfig {
        self.config
            .overrides
            .get(&(from, to))
            .copied()
            .unwrap_or(self.config.default_link)
    }

    /// Decides the fate of one message of `bytes` from `from` to `to`.
    pub fn transmit(&mut self, from: NodeId, to: NodeId, bytes: usize) -> Transmit {
        self.stats.sent += 1;
        self.stats.bytes_sent += bytes as u64;
        if !self.reachable(from, to) {
            self.stats.unreachable += 1;
            return Transmit::Unreachable;
        }
        let link = self.link(from, to);
        if self.rng.chance(link.drop_probability) {
            self.stats.dropped += 1;
            return Transmit::Dropped;
        }
        let mut delay = link.delay(bytes, &mut self.rng);
        if self.rng.chance(link.faults.reorder_probability) {
            // hold the message back far enough to slip behind later
            // traffic on the same link
            let window = link.faults.reorder_window.as_micros();
            if window > 0 {
                delay = delay + Duration::from_micros(self.rng.range_u64(0, window + 1));
                self.stats.reordered += 1;
            }
        }
        Transmit::Deliver(delay)
    }

    /// Rolls the post-delivery fault dice for one deliverable message:
    /// whether to inject a duplicate copy (and with what independent
    /// delay), whether the driver should capture the frame for later
    /// replay, and whether to re-deliver a previously captured frame
    /// now. Called by the simulation driver after a
    /// [`Transmit::Deliver`] verdict — the network itself stores no
    /// messages, so capture/replay bookkeeping lives with the driver.
    pub fn fault_verdict(&mut self, from: NodeId, to: NodeId, bytes: usize) -> FaultVerdict {
        let faults = self.link(from, to).faults;
        if faults.is_noop() {
            return FaultVerdict::default();
        }
        let duplicate_delay = if self.rng.chance(faults.duplicate_probability) {
            self.stats.duplicated += 1;
            Some(self.link(from, to).delay(bytes, &mut self.rng))
        } else {
            None
        };
        let replay = if self.rng.chance(faults.replay_probability) {
            // the raw pick is reduced mod the driver's stash size
            Some((self.rng.next_u64(), faults.replay_delay))
        } else {
            None
        };
        FaultVerdict {
            duplicate_delay,
            capture: faults.replay_probability > 0.0,
            replay,
        }
    }

    /// Records a stale replay the driver actually injected (the verdict
    /// only *rolls* for one; the driver may have nothing captured yet).
    pub fn record_replay(&mut self) {
        self.stats.replayed += 1;
    }

    /// Records a completed delivery (called by the simulation driver).
    pub fn record_delivery(&mut self, bytes: usize) {
        self.stats.delivered += 1;
        self.stats.bytes_delivered += bytes as u64;
    }

    /// Whether `from` can currently reach `to`.
    #[must_use]
    pub fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true;
        }
        if self.blocked.contains(&(from, to)) {
            return false;
        }
        match &self.partition {
            None => true,
            Some(groups) => groups.iter().any(|g| g.contains(&from) && g.contains(&to)),
        }
    }

    /// Splits the network into isolated groups. Nodes absent from every
    /// group are isolated entirely.
    pub fn partition(&mut self, groups: Vec<BTreeSet<NodeId>>) {
        self.partition = Some(groups);
    }

    /// Convenience: splits into exactly two sides.
    pub fn partition_two(
        &mut self,
        side_a: impl IntoIterator<Item = NodeId>,
        side_b: impl IntoIterator<Item = NodeId>,
    ) {
        self.partition(vec![
            side_a.into_iter().collect(),
            side_b.into_iter().collect(),
        ]);
    }

    /// Removes any partition.
    pub fn heal(&mut self) {
        self.partition = None;
    }

    /// Switches every link's adversarial-fault knobs at once — the
    /// default link and all per-pair overrides. This is how a
    /// declarative fault schedule flips the whole fleet hostile (or
    /// clean) mid-run without rebuilding the network.
    pub fn set_faults(&mut self, faults: LinkFaults) {
        self.config.default_link.faults = faults;
        for link in self.config.overrides.values_mut() {
            link.faults = faults;
        }
    }

    /// Administratively blocks the directed link `from → to`.
    pub fn block_link(&mut self, from: NodeId, to: NodeId) {
        self.blocked.insert((from, to));
    }

    /// Unblocks the directed link.
    pub fn unblock_link(&mut self, from: NodeId, to: NodeId) {
        self.blocked.remove(&(from, to));
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(link: LinkConfig) -> Network {
        Network::new(NetworkConfig::uniform(link), SimRng::new(1))
    }

    #[test]
    fn default_link_delivers_with_latency() {
        let mut n = net(LinkConfig::default());
        match n.transmit(NodeId(0), NodeId(1), 100) {
            Transmit::Deliver(d) => assert_eq!(d, Duration::from_micros(500)),
            other => panic!("expected delivery, got {other:?}"),
        }
        assert_eq!(n.stats().sent, 1);
        assert_eq!(n.stats().bytes_sent, 100);
    }

    #[test]
    fn bandwidth_adds_size_proportional_delay() {
        let link = LinkConfig {
            latency: LatencyModel::Constant(Duration::from_micros(100)),
            bandwidth: Some(1_000_000), // 1 MB/s → 1µs per byte
            ..LinkConfig::default()
        };
        let mut n = net(link);
        let small = match n.transmit(NodeId(0), NodeId(1), 10) {
            Transmit::Deliver(d) => d,
            _ => unreachable!(),
        };
        let big = match n.transmit(NodeId(0), NodeId(1), 10_000) {
            Transmit::Deliver(d) => d,
            _ => unreachable!(),
        };
        assert_eq!(small, Duration::from_micros(110));
        assert_eq!(big, Duration::from_micros(10_100));
    }

    #[test]
    fn drop_probability_loses_messages() {
        let link = LinkConfig {
            drop_probability: 1.0,
            ..LinkConfig::default()
        };
        let mut n = net(link);
        assert_eq!(n.transmit(NodeId(0), NodeId(1), 1), Transmit::Dropped);
        assert_eq!(n.stats().dropped, 1);
    }

    #[test]
    fn partition_blocks_cross_group_traffic() {
        let mut n = net(LinkConfig::default());
        n.partition_two([NodeId(0), NodeId(1)], [NodeId(2)]);
        assert!(n.reachable(NodeId(0), NodeId(1)));
        assert!(!n.reachable(NodeId(0), NodeId(2)));
        assert_eq!(n.transmit(NodeId(0), NodeId(2), 1), Transmit::Unreachable);
        assert_eq!(n.stats().unreachable, 1);
        n.heal();
        assert!(n.reachable(NodeId(0), NodeId(2)));
    }

    #[test]
    fn isolated_node_unreachable_but_self_reachable() {
        let mut n = net(LinkConfig::default());
        n.partition(vec![[NodeId(0)].into_iter().collect()]);
        assert!(!n.reachable(NodeId(0), NodeId(9)));
        assert!(n.reachable(NodeId(9), NodeId(9)), "self-loop always works");
    }

    #[test]
    fn blocked_links_are_directed() {
        let mut n = net(LinkConfig::default());
        n.block_link(NodeId(0), NodeId(1));
        assert!(!n.reachable(NodeId(0), NodeId(1)));
        assert!(n.reachable(NodeId(1), NodeId(0)));
        n.unblock_link(NodeId(0), NodeId(1));
        assert!(n.reachable(NodeId(0), NodeId(1)));
    }

    #[test]
    fn overrides_take_precedence() {
        let mut cfg = NetworkConfig::uniform(LinkConfig::default());
        cfg.set_link(
            NodeId(0),
            NodeId(1),
            LinkConfig {
                latency: LatencyModel::Constant(Duration::from_millis(9)),
                ..LinkConfig::default()
            },
        );
        let mut n = Network::new(cfg, SimRng::new(2));
        match n.transmit(NodeId(0), NodeId(1), 1) {
            Transmit::Deliver(d) => assert_eq!(d, Duration::from_millis(9)),
            other => panic!("{other:?}"),
        }
        // reverse direction uses the default
        match n.transmit(NodeId(1), NodeId(0), 1) {
            Transmit::Deliver(d) => assert_eq!(d, Duration::from_micros(500)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn clean_link_fault_verdict_is_inert() {
        let mut n = net(LinkConfig::default());
        let v = n.fault_verdict(NodeId(0), NodeId(1), 64);
        assert_eq!(v, FaultVerdict::default());
        assert!(!v.capture);
        let s = n.stats();
        assert_eq!((s.duplicated, s.reordered, s.replayed), (0, 0, 0));
    }

    #[test]
    fn certain_duplication_always_yields_a_copy() {
        let link = LinkConfig {
            faults: LinkFaults {
                duplicate_probability: 1.0,
                ..LinkFaults::default()
            },
            ..LinkConfig::default()
        };
        let mut n = net(link);
        for _ in 0..10 {
            let v = n.fault_verdict(NodeId(0), NodeId(1), 8);
            assert!(v.duplicate_delay.is_some());
            assert!(v.replay.is_none());
            assert!(!v.capture, "no replay configured, nothing to stash");
        }
        assert_eq!(n.stats().duplicated, 10);
    }

    #[test]
    fn certain_reorder_stretches_delay_within_window() {
        let base = LinkConfig {
            latency: LatencyModel::Constant(Duration::from_micros(100)),
            ..LinkConfig::default()
        };
        let hostile = LinkConfig {
            faults: LinkFaults {
                reorder_probability: 1.0,
                reorder_window: Duration::from_millis(2),
                ..LinkFaults::default()
            },
            ..base
        };
        let mut n = net(hostile);
        let mut stretched = false;
        for _ in 0..50 {
            match n.transmit(NodeId(0), NodeId(1), 8) {
                Transmit::Deliver(d) => {
                    assert!(d >= Duration::from_micros(100));
                    assert!(d <= Duration::from_micros(100) + Duration::from_millis(2));
                    stretched |= d > Duration::from_micros(100);
                }
                other => panic!("{other:?}"),
            }
        }
        assert!(stretched, "a 2ms window should stretch at least one of 50");
        assert_eq!(n.stats().reordered, 50);
    }

    #[test]
    fn replay_faults_ask_for_capture_and_roll_picks() {
        let link = LinkConfig {
            faults: LinkFaults {
                replay_probability: 1.0,
                replay_delay: Duration::from_millis(8),
                ..LinkFaults::default()
            },
            ..LinkConfig::default()
        };
        let mut n = net(link);
        let v = n.fault_verdict(NodeId(0), NodeId(1), 8);
        assert!(v.capture, "replay-prone links must capture frames");
        let (_, delay) = v.replay.expect("certain replay");
        assert_eq!(delay, Duration::from_millis(8));
        // stats only move when the driver actually injects one
        assert_eq!(n.stats().replayed, 0);
        n.record_replay();
        assert_eq!(n.stats().replayed, 1);
    }

    #[test]
    fn hostile_profile_is_not_noop_and_default_is() {
        assert!(LinkFaults::default().is_noop());
        assert!(!LinkFaults::hostile().is_noop());
        let mut seen = (false, false, false);
        let link = LinkConfig {
            faults: LinkFaults::hostile(),
            ..LinkConfig::default()
        };
        let mut n = net(link);
        for _ in 0..400 {
            n.transmit(NodeId(0), NodeId(1), 8);
            let v = n.fault_verdict(NodeId(0), NodeId(1), 8);
            seen.0 |= v.duplicate_delay.is_some();
            seen.1 |= v.replay.is_some();
            seen.2 |= v.capture;
        }
        assert!(seen.0 && seen.1 && seen.2, "hostile should hit every class");
        assert!(n.stats().reordered > 0);
    }

    #[test]
    fn faulty_links_stay_seed_deterministic() {
        let link = LinkConfig {
            faults: LinkFaults::hostile(),
            ..LinkConfig::default()
        };
        let run = |seed| {
            let mut n = Network::new(NetworkConfig::uniform(link), SimRng::new(seed));
            let mut trace = Vec::new();
            for i in 0..100 {
                trace.push(n.transmit(NodeId(0), NodeId(1), i));
                trace.push(match n.fault_verdict(NodeId(0), NodeId(1), i) {
                    v if v.duplicate_delay.is_some() => Transmit::Deliver(Duration::ZERO),
                    _ => Transmit::Dropped,
                });
            }
            (trace, n.stats())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0);
    }

    #[test]
    fn record_delivery_updates_stats() {
        let mut n = net(LinkConfig::default());
        n.transmit(NodeId(0), NodeId(1), 64);
        n.record_delivery(64);
        assert_eq!(n.stats().delivered, 1);
        assert_eq!(n.stats().bytes_delivered, 64);
    }
}
