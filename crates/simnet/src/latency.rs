//! [`LatencyModel`]: pluggable distributions for message propagation
//! delay.

use crate::rng::SimRng;
use crate::time::Duration;

/// A distribution of one-way network propagation delays.
///
/// The store experiments use [`LatencyModel::LogNormal`] for a realistic
/// long-tailed intra-datacenter profile; unit tests mostly use
/// [`LatencyModel::Constant`] for exact reasoning.
///
/// # Examples
///
/// ```
/// use simnet::{LatencyModel, Duration, SimRng};
/// let mut rng = SimRng::new(1);
/// let d = LatencyModel::Constant(Duration::from_micros(500)).sample(&mut rng);
/// assert_eq!(d, Duration::from_micros(500));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LatencyModel {
    /// Always exactly this delay.
    Constant(Duration),
    /// Uniform in `[lo, hi)`.
    Uniform {
        /// Minimum delay (inclusive).
        lo: Duration,
        /// Maximum delay (exclusive).
        hi: Duration,
    },
    /// Exponential with the given mean, shifted by a floor (propagation
    /// can never be faster than `floor`).
    Exponential {
        /// Minimum physical delay added to every sample.
        floor: Duration,
        /// Mean of the exponential component.
        mean: Duration,
    },
    /// Log-normal: `floor + exp(N(mu, sigma))` microseconds — heavy-tailed,
    /// the shape seen in real datacenter RPC latencies.
    LogNormal {
        /// Minimum physical delay added to every sample.
        floor: Duration,
        /// Mean of the underlying normal (of ln-microseconds).
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
}

impl LatencyModel {
    /// Draws one delay.
    pub fn sample(&self, rng: &mut SimRng) -> Duration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { lo, hi } => {
                if lo >= hi {
                    return lo;
                }
                Duration::from_micros(rng.range_u64(lo.as_micros(), hi.as_micros()))
            }
            LatencyModel::Exponential { floor, mean } => {
                let extra = rng.exponential(mean.as_micros() as f64);
                floor + Duration::from_micros(extra as u64)
            }
            LatencyModel::LogNormal { floor, mu, sigma } => {
                let ln = rng.normal(mu, sigma);
                let us = ln.exp().min(1e12);
                floor + Duration::from_micros(us as u64)
            }
        }
    }

    /// A typical intra-datacenter profile: 250µs floor with a log-normal
    /// body centred near 500µs and an occasional multi-millisecond tail.
    #[must_use]
    pub fn datacenter() -> Self {
        LatencyModel::LogNormal {
            floor: Duration::from_micros(250),
            mu: 5.5, // e^5.5 ≈ 245µs body
            sigma: 0.8,
        }
    }

    /// A wide-area profile: 20ms floor, exponential tail with 10ms mean.
    #[must_use]
    pub fn wan() -> Self {
        LatencyModel::Exponential {
            floor: Duration::from_millis(20),
            mean: Duration::from_millis(10),
        }
    }
}

impl Default for LatencyModel {
    /// 500µs constant — a neutral default for tests.
    fn default() -> Self {
        LatencyModel::Constant(Duration::from_micros(500))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_exact() {
        let mut rng = SimRng::new(0);
        let m = LatencyModel::Constant(Duration::from_millis(3));
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), Duration::from_millis(3));
        }
    }

    #[test]
    fn uniform_within_bounds() {
        let mut rng = SimRng::new(1);
        let m = LatencyModel::Uniform {
            lo: Duration::from_micros(100),
            hi: Duration::from_micros(200),
        };
        for _ in 0..500 {
            let d = m.sample(&mut rng);
            assert!(d >= Duration::from_micros(100) && d < Duration::from_micros(200));
        }
    }

    #[test]
    fn degenerate_uniform_returns_lo() {
        let mut rng = SimRng::new(1);
        let m = LatencyModel::Uniform {
            lo: Duration::from_micros(100),
            hi: Duration::from_micros(100),
        };
        assert_eq!(m.sample(&mut rng), Duration::from_micros(100));
    }

    #[test]
    fn exponential_respects_floor_and_mean() {
        let mut rng = SimRng::new(2);
        let m = LatencyModel::Exponential {
            floor: Duration::from_micros(100),
            mean: Duration::from_micros(400),
        };
        let n = 20_000;
        let mut sum = 0u64;
        for _ in 0..n {
            let d = m.sample(&mut rng);
            assert!(d >= Duration::from_micros(100));
            sum += d.as_micros();
        }
        let mean = sum as f64 / f64::from(n);
        assert!((mean - 500.0).abs() < 25.0, "sample mean {mean}");
    }

    #[test]
    fn lognormal_respects_floor() {
        let mut rng = SimRng::new(3);
        let m = LatencyModel::datacenter();
        for _ in 0..1000 {
            assert!(m.sample(&mut rng) >= Duration::from_micros(250));
        }
    }

    #[test]
    fn presets_are_sane() {
        let mut rng = SimRng::new(4);
        assert!(LatencyModel::wan().sample(&mut rng) >= Duration::from_millis(20));
        assert_eq!(
            LatencyModel::default().sample(&mut rng),
            Duration::from_micros(500)
        );
    }
}
