//! Seeded, splittable randomness: every simulation run is a pure function
//! of one `u64` seed.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The simulator's random-number generator.
///
/// Wraps a seeded [`StdRng`] and adds [`SimRng::fork`], which derives an
/// independent stream for a sub-concern (one per node, one for the
/// network, one for the workload…). Forking keeps event-order changes in
/// one component from perturbing the random choices of another — the key
/// to debuggable, reproducible simulations.
///
/// # Examples
///
/// ```
/// use simnet::SimRng;
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64(), "same seed, same stream");
/// let mut net = a.fork("network");
/// let mut wl = a.fork("workload");
/// assert_ne!(net.next_u64(), wl.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SimRng {
            seed,
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The seed this stream was created from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent stream identified by `label`.
    ///
    /// The child seed mixes the parent seed with a hash of the label, so
    /// `fork("a")` and `fork("b")` are decorrelated while remaining pure
    /// functions of the root seed.
    #[must_use]
    pub fn fork(&self, label: &str) -> SimRng {
        SimRng::new(mix(self.seed, hash_label(label)))
    }

    /// Derives an independent stream for an indexed sub-concern (e.g. one
    /// per node).
    #[must_use]
    pub fn fork_indexed(&self, label: &str, index: u64) -> SimRng {
        SimRng::new(mix(mix(self.seed, hash_label(label)), index))
    }

    /// Next `u64` from the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit_f64() < p
        }
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        &items[self.range_u64(0, items.len() as u64) as usize]
    }

    /// Standard exponential draw with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.unit_f64(); // (0, 1]
        -mean * u.ln()
    }

    /// Standard normal draw (Box–Muller).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = 1.0 - self.unit_f64();
        let u2 = self.unit_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// FNV-1a over the label bytes.
fn hash_label(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates related seeds.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(1);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn forks_are_independent_and_reproducible() {
        let root = SimRng::new(99);
        let mut x1 = root.fork("x");
        let mut x2 = root.fork("x");
        let y = root.fork("y");
        assert_eq!(x1.next_u64(), x2.next_u64());
        assert_ne!(x1.seed(), y.seed());
        let mut i0 = root.fork_indexed("node", 0);
        let mut i1 = root.fork_indexed("node", 1);
        assert_ne!(i0.next_u64(), i1.next_u64());
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn range_and_pick() {
        let mut r = SimRng::new(5);
        for _ in 0..100 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
        let items = [1, 2, 3];
        for _ in 0..20 {
            assert!(items.contains(r.pick(&items)));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::new(0).range_u64(5, 5);
    }

    #[test]
    #[should_panic(expected = "empty slice")]
    fn empty_pick_panics() {
        SimRng::new(0).pick::<u8>(&[]);
    }

    #[test]
    fn exponential_mean_roughly_right() {
        let mut r = SimRng::new(6);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(5.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 5.0).abs() < 0.3, "sample mean {mean}");
    }

    #[test]
    fn normal_moments_roughly_right() {
        let mut r = SimRng::new(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn rngcore_fill_bytes_works() {
        let mut r = SimRng::new(8);
        let mut buf = [0u8; 32];
        r.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 32]);
    }
}
