//! [`EventQueue`]: the simulator's priority queue with deterministic
//! FIFO tie-breaking for simultaneous events.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered queue of events.
///
/// Events scheduled for the same instant pop in insertion order, which is
/// what makes whole-simulation runs bit-for-bit reproducible.
///
/// # Examples
///
/// ```
/// use simnet::queue::EventQueue;
/// use simnet::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_micros(5), "late");
/// q.push(SimTime::from_micros(1), "a");
/// q.push(SimTime::from_micros(1), "b");
/// assert_eq!(q.pop(), Some((SimTime::from_micros(1), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_micros(1), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_micros(5), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// The time of the earliest event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(t(30), 3);
        q.push(t(10), 1);
        q.push(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
    }

    #[test]
    fn fifo_for_simultaneous_events() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(7), i)));
        }
    }

    #[test]
    fn peek_len_empty() {
        let mut q: EventQueue<&str> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(t(5), "x");
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(t(5)));
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_remains_stable() {
        let mut q = EventQueue::new();
        q.push(t(1), "a");
        q.push(t(2), "b1");
        assert_eq!(q.pop(), Some((t(1), "a")));
        q.push(t(2), "b2");
        q.push(t(1), "late-but-earlier-time");
        assert_eq!(q.pop(), Some((t(1), "late-but-earlier-time")));
        assert_eq!(q.pop(), Some((t(2), "b1")));
        assert_eq!(q.pop(), Some((t(2), "b2")));
    }
}
