//! The [`Simulation`] driver: hosts [`Process`]es, routes their messages
//! through the [`Network`], and advances virtual time deterministically.

use std::collections::BTreeMap;

use crate::net::{Network, NetworkConfig, NodeId, Transmit};
use crate::queue::EventQueue;
use crate::rng::SimRng;
use crate::time::{Duration, SimTime};
use crate::trace::{Trace, TraceEvent};

/// Captured frames kept per directed link for stale-replay injection.
/// Small and bounded: replays should resurface *recent-ish* history, and
/// an unbounded stash would make hostile runs balloon with cloned
/// messages.
const REPLAY_STASH_CAP: usize = 16;

/// Handle to a pending timer, returned by [`ProcessCtx::set_timer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(u64);

impl TimerId {
    /// Constructs a timer id from its raw counter value. Timer ids only
    /// need to be unique per node, so drivers other than [`Simulation`]
    /// (which allocates from a global counter via
    /// [`ProcessCtx::set_timer`]) can mint them from per-node counters.
    #[must_use]
    pub fn from_raw(raw: u64) -> Self {
        TimerId(raw)
    }

    /// The raw counter value behind this id.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A deterministic state machine hosted by the simulation.
///
/// Processes communicate only through messages and timers; all
/// nondeterminism must come from the provided RNG so that runs are
/// reproducible from the seed.
pub trait Process {
    /// The message type exchanged between processes.
    type Msg;

    /// Called once at time zero, before any message.
    fn on_start(&mut self, ctx: &mut ProcessCtx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called when a message addressed to this process arrives.
    fn on_message(&mut self, ctx: &mut ProcessCtx<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a timer set by this process fires.
    fn on_timer(&mut self, ctx: &mut ProcessCtx<'_, Self::Msg>, timer: TimerId) {
        let _ = (ctx, timer);
    }
}

/// The capabilities a process sees while handling an event.
#[derive(Debug)]
pub struct ProcessCtx<'a, M> {
    id: NodeId,
    now: SimTime,
    rng: &'a mut SimRng,
    outbox: &'a mut Vec<(NodeId, M, usize)>,
    timer_requests: &'a mut Vec<(Duration, TimerId)>,
    next_timer: &'a mut u64,
    notes: &'a mut Vec<String>,
}

impl<'a, M> ProcessCtx<'a, M> {
    /// This process's node id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This process's private RNG stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Sends `msg` (`bytes` long on the wire) to `to`. Delivery is decided
    /// by the network; self-sends are delivered with zero delay.
    pub fn send(&mut self, to: NodeId, msg: M, bytes: usize) {
        self.outbox.push((to, msg, bytes));
    }

    /// Schedules [`Process::on_timer`] after `delay`. Returns the id the
    /// callback will receive.
    pub fn set_timer(&mut self, delay: Duration) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.timer_requests.push((delay, id));
        id
    }

    /// Adds a free-form annotation to the trace.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }
}

enum Event<M> {
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: M,
        bytes: usize,
    },
    Timer {
        node: NodeId,
        id: TimerId,
    },
}

impl<M> core::fmt::Debug for Event<M> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Event::Deliver {
                from, to, bytes, ..
            } => {
                write!(f, "Deliver({from}→{to}, {bytes}B)")
            }
            Event::Timer { node, id } => write!(f, "Timer({node}, {id:?})"),
        }
    }
}

/// A deterministic discrete-event simulation over a set of processes.
///
/// See the crate docs for an end-to-end example.
#[derive(Debug)]
pub struct Simulation<P: Process> {
    processes: Vec<P>,
    rngs: Vec<SimRng>,
    network: Network,
    queue: EventQueue<Event<P::Msg>>,
    now: SimTime,
    next_timer: u64,
    trace: Trace,
    events_processed: u64,
    max_events: u64,
    started: bool,
    /// Per-directed-link frames captured for stale replay (bounded by
    /// [`REPLAY_STASH_CAP`]); only links whose [`crate::LinkFaults`]
    /// enable replay ever populate this.
    replay_stash: BTreeMap<(NodeId, NodeId), Vec<P::Msg>>,
}

impl<P: Process> Simulation<P> {
    /// Default safety bound on processed events per run call.
    pub const DEFAULT_MAX_EVENTS: u64 = 50_000_000;

    /// Creates a simulation with `seed`-derived randomness, the given
    /// network configuration, and one node per process (node `i` hosts
    /// `processes[i]`).
    #[must_use]
    pub fn new(seed: u64, net_config: NetworkConfig, processes: Vec<P>) -> Self {
        let root = SimRng::new(seed);
        let rngs = (0..processes.len())
            .map(|i| root.fork_indexed("node", i as u64))
            .collect();
        Simulation {
            processes,
            rngs,
            network: Network::new(net_config, root.fork("network")),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            next_timer: 0,
            trace: Trace::new(),
            events_processed: 0,
            max_events: Self::DEFAULT_MAX_EVENTS,
            started: false,
            replay_stash: BTreeMap::new(),
        }
    }

    /// Number of hosted processes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// Whether the simulation hosts no processes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read access to the network (stats, reachability).
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable access to the network (partitions, blocked links).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Read access to process `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn process(&self, i: usize) -> &P {
        &self.processes[i]
    }

    /// Mutable access to process `i` — for test-harness fault injection
    /// and post-run state extraction, not for use from within the
    /// simulation.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn process_mut(&mut self, i: usize) -> &mut P {
        &mut self.processes[i]
    }

    /// Read access to all processes.
    #[must_use]
    pub fn processes(&self) -> &[P] {
        &self.processes
    }

    /// Enqueues `msg` for delivery to `to` at the current instant, as if
    /// `to` had sent it to itself — a harness-level injection point for
    /// control-plane events (e.g. membership changes) and protocol-level
    /// tests, bypassing the network.
    pub fn post(&mut self, to: NodeId, msg: P::Msg) {
        self.queue.push(
            self.now,
            Event::Deliver {
                from: to,
                to,
                msg,
                bytes: 0,
            },
        );
    }

    /// The execution trace (enable it before running).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the trace (to enable/bound it).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Sets the safety bound on total processed events.
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = max;
    }

    /// Total events processed so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }
}

/// The run path needs `P::Msg: Clone` so fault injection (duplication and
/// stale replay) can re-enqueue copies of in-flight messages. Construction
/// and inspection above stay unconstrained.
impl<P: Process> Simulation<P>
where
    P::Msg: Clone,
{
    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.processes.len() {
            self.dispatch(i, Dispatch::Start);
        }
    }

    /// Runs one event. Returns `false` when the queue is empty.
    ///
    /// # Panics
    ///
    /// Panics if the event safety bound is exceeded (runaway message
    /// loops are bugs, not workloads).
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        let Some((time, event)) = self.queue.pop() else {
            return false;
        };
        assert!(
            self.events_processed < self.max_events,
            "simulation exceeded {} events — livelock?",
            self.max_events
        );
        self.events_processed += 1;
        debug_assert!(time >= self.now, "time went backwards");
        self.now = time;
        match event {
            Event::Deliver {
                from,
                to,
                msg,
                bytes,
            } => {
                self.network.record_delivery(bytes);
                self.trace.record(TraceEvent::Delivered {
                    time,
                    from,
                    to,
                    bytes,
                });
                self.dispatch(to.0 as usize, Dispatch::Message { from, msg });
            }
            Event::Timer { node, id } => {
                self.trace.record(TraceEvent::TimerFired { time, node });
                self.dispatch(node.0 as usize, Dispatch::Timer(id));
            }
        }
        true
    }

    /// Runs until the queue is empty.
    pub fn run_to_quiescence(&mut self) {
        self.ensure_started();
        while self.step() {}
    }

    /// Runs until virtual time reaches `deadline` (events at the deadline
    /// are processed) or the queue empties.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.ensure_started();
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    fn dispatch(&mut self, index: usize, what: Dispatch<P::Msg>) {
        let node = NodeId(index as u32);
        let mut outbox = Vec::new();
        let mut timer_requests = Vec::new();
        let mut notes = Vec::new();
        {
            let mut ctx = ProcessCtx {
                id: node,
                now: self.now,
                rng: &mut self.rngs[index],
                outbox: &mut outbox,
                timer_requests: &mut timer_requests,
                next_timer: &mut self.next_timer,
                notes: &mut notes,
            };
            match what {
                Dispatch::Start => self.processes[index].on_start(&mut ctx),
                Dispatch::Message { from, msg } => {
                    self.processes[index].on_message(&mut ctx, from, msg)
                }
                Dispatch::Timer(id) => self.processes[index].on_timer(&mut ctx, id),
            }
        }
        for text in notes {
            self.trace.record(TraceEvent::Note {
                time: self.now,
                node,
                text,
            });
        }
        for (to, msg, bytes) in outbox {
            self.trace.record(TraceEvent::Sent {
                time: self.now,
                from: node,
                to,
                bytes,
            });
            if to == node {
                // self-sends bypass the network, zero delay
                self.queue.push(
                    self.now,
                    Event::Deliver {
                        from: node,
                        to,
                        msg,
                        bytes,
                    },
                );
                continue;
            }
            match self.network.transmit(node, to, bytes) {
                Transmit::Deliver(delay) => {
                    let verdict = self.network.fault_verdict(node, to, bytes);
                    if let Some(dup_delay) = verdict.duplicate_delay {
                        self.queue.push(
                            self.now + dup_delay,
                            Event::Deliver {
                                from: node,
                                to,
                                msg: msg.clone(),
                                bytes,
                            },
                        );
                    }
                    if let Some((pick, replay_delay)) = verdict.replay {
                        if let Some(stash) = self.replay_stash.get(&(node, to)) {
                            if !stash.is_empty() {
                                let stale = stash[pick as usize % stash.len()].clone();
                                self.network.record_replay();
                                self.queue.push(
                                    self.now + replay_delay,
                                    Event::Deliver {
                                        from: node,
                                        to,
                                        msg: stale,
                                        bytes,
                                    },
                                );
                            }
                        }
                    }
                    if verdict.capture {
                        let stash = self.replay_stash.entry((node, to)).or_default();
                        if stash.len() >= REPLAY_STASH_CAP {
                            stash.remove(0);
                        }
                        stash.push(msg.clone());
                    }
                    self.queue.push(
                        self.now + delay,
                        Event::Deliver {
                            from: node,
                            to,
                            msg,
                            bytes,
                        },
                    );
                }
                Transmit::Dropped | Transmit::Unreachable => {
                    self.trace.record(TraceEvent::Lost {
                        time: self.now,
                        from: node,
                        to,
                    });
                }
            }
        }
        for (delay, id) in timer_requests {
            self.queue.push(self.now + delay, Event::Timer { node, id });
        }
    }
}

enum Dispatch<M> {
    Start,
    Message { from: NodeId, msg: M },
    Timer(TimerId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;
    use crate::net::{LinkConfig, LinkFaults};

    /// Counts messages; replies until a budget is exhausted.
    struct Echo {
        received: u32,
        budget: u32,
    }

    impl Process for Echo {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut ProcessCtx<'_, u32>) {
            if ctx.id() == NodeId(0) {
                ctx.send(NodeId(1), 0, 16);
            }
        }

        fn on_message(&mut self, ctx: &mut ProcessCtx<'_, u32>, from: NodeId, msg: u32) {
            self.received += 1;
            if self.budget > 0 {
                self.budget -= 1;
                ctx.send(from, msg + 1, 16);
            }
        }
    }

    fn echo_pair(budget: u32) -> Simulation<Echo> {
        Simulation::new(
            7,
            NetworkConfig::default(),
            vec![
                Echo {
                    received: 0,
                    budget,
                },
                Echo {
                    received: 0,
                    budget,
                },
            ],
        )
    }

    #[test]
    fn messages_flow_and_time_advances() {
        let mut sim = echo_pair(2);
        sim.run_to_quiescence();
        // n0 sends 1; each side replies twice: total deliveries = 5
        assert_eq!(sim.network().stats().delivered, 5);
        assert_eq!(sim.now(), SimTime::from_micros(2500), "5 hops × 500µs");
        assert_eq!(sim.process(0).received + sim.process(1).received, 5);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sim = echo_pair(3);
            sim.run_to_quiescence();
            (sim.now(), sim.network().stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = echo_pair(1000);
        sim.run_until(SimTime::from_micros(1750));
        // deliveries at 500, 1000, 1500 have happened; 2000 has not
        assert_eq!(sim.network().stats().delivered, 3);
        assert_eq!(sim.now(), SimTime::from_micros(1750));
        sim.run_until(SimTime::from_micros(2000));
        assert_eq!(sim.network().stats().delivered, 4);
    }

    #[test]
    fn timers_fire_in_order() {
        struct Timed {
            fired: Vec<u64>,
            ids: Vec<TimerId>,
        }
        impl Process for Timed {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut ProcessCtx<'_, ()>) {
                self.ids.push(ctx.set_timer(Duration::from_micros(30)));
                self.ids.push(ctx.set_timer(Duration::from_micros(10)));
            }
            fn on_message(&mut self, _: &mut ProcessCtx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut ProcessCtx<'_, ()>, timer: TimerId) {
                assert!(self.ids.contains(&timer));
                self.fired.push(ctx.now().as_micros());
            }
        }
        let mut sim = Simulation::new(
            1,
            NetworkConfig::default(),
            vec![Timed {
                fired: vec![],
                ids: vec![],
            }],
        );
        sim.run_to_quiescence();
        assert_eq!(sim.process(0).fired, vec![10, 30]);
    }

    #[test]
    fn partition_loses_messages() {
        let mut sim = echo_pair(100);
        sim.network_mut().partition_two([NodeId(0)], [NodeId(1)]);
        sim.run_to_quiescence();
        assert_eq!(sim.network().stats().delivered, 0);
        assert_eq!(sim.network().stats().unreachable, 1);
    }

    #[test]
    fn self_send_is_immediate() {
        struct SelfSender {
            got: bool,
        }
        impl Process for SelfSender {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut ProcessCtx<'_, ()>) {
                ctx.send(ctx.id(), (), 0);
            }
            fn on_message(&mut self, ctx: &mut ProcessCtx<'_, ()>, from: NodeId, _: ()) {
                assert_eq!(from, ctx.id());
                assert_eq!(ctx.now(), SimTime::ZERO);
                self.got = true;
            }
        }
        let mut sim = Simulation::new(1, NetworkConfig::default(), vec![SelfSender { got: false }]);
        sim.run_to_quiescence();
        assert!(sim.process(0).got);
    }

    #[test]
    fn trace_records_when_enabled() {
        let mut sim = echo_pair(1);
        sim.trace_mut().enable();
        sim.run_to_quiescence();
        assert!(sim
            .trace()
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::Sent { .. })));
        assert_eq!(sim.trace().deliveries_to(NodeId(1)), 2);
    }

    #[test]
    #[should_panic(expected = "livelock")]
    fn runaway_loops_hit_the_event_bound() {
        let mut sim = echo_pair(u32::MAX);
        sim.set_max_events(1_000);
        sim.run_to_quiescence();
    }

    /// One-shot sender: n0 fires `count` distinct messages at n1, which
    /// only tallies what it sees (no replies — so every extra delivery
    /// is fault-injected, not protocol echo).
    struct Tally {
        to_send: u32,
        seen: Vec<u32>,
    }

    impl Process for Tally {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut ProcessCtx<'_, u32>) {
            if ctx.id() == NodeId(0) {
                for i in 0..self.to_send {
                    ctx.send(NodeId(1), i, 16);
                }
            }
        }

        fn on_message(&mut self, _: &mut ProcessCtx<'_, u32>, _: NodeId, msg: u32) {
            self.seen.push(msg);
        }
    }

    fn tally_sim(seed: u64, count: u32, faults: LinkFaults) -> Simulation<Tally> {
        let link = LinkConfig {
            faults,
            ..LinkConfig::default()
        };
        Simulation::new(
            seed,
            NetworkConfig::uniform(link),
            vec![
                Tally {
                    to_send: count,
                    seen: vec![],
                },
                Tally {
                    to_send: 0,
                    seen: vec![],
                },
            ],
        )
    }

    #[test]
    fn duplication_inflates_deliveries() {
        let mut sim = tally_sim(
            11,
            200,
            LinkFaults {
                duplicate_probability: 0.5,
                ..LinkFaults::default()
            },
        );
        sim.run_to_quiescence();
        let seen = &sim.process(1).seen;
        assert!(
            seen.len() > 200,
            "0.5 duplication over 200 sends must inject copies, saw {}",
            seen.len()
        );
        assert_eq!(sim.network().stats().duplicated, (seen.len() - 200) as u64);
        // every original still arrives exactly once-or-more, none invented
        let mut uniq = seen.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn stale_replay_redelivers_old_frames() {
        let mut sim = tally_sim(
            3,
            400,
            LinkFaults {
                replay_probability: 0.2,
                replay_delay: Duration::from_millis(8),
                ..LinkFaults::default()
            },
        );
        sim.run_to_quiescence();
        let stats = sim.network().stats();
        assert!(stats.replayed > 0, "0.2 replay over 400 sends must fire");
        assert_eq!(
            sim.process(1).seen.len() as u64,
            400 + stats.replayed,
            "each replay is one extra delivery of an already-sent frame"
        );
    }

    #[test]
    fn hostile_runs_stay_seed_deterministic() {
        let run = |seed| {
            let mut sim = tally_sim(seed, 300, LinkFaults::hostile());
            sim.run_to_quiescence();
            (sim.process(1).seen.clone(), sim.network().stats())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0, "different seeds, different traces");
    }

    #[test]
    fn reordering_breaks_fifo_delivery() {
        let mut sim = tally_sim(
            5,
            100,
            LinkFaults {
                reorder_probability: 0.5,
                reorder_window: Duration::from_millis(4),
                ..LinkFaults::default()
            },
        );
        sim.run_to_quiescence();
        let seen = &sim.process(1).seen;
        assert_eq!(seen.len(), 100, "reorder never loses or copies");
        assert!(
            seen.windows(2).any(|w| w[0] > w[1]),
            "a 4ms window over same-instant sends must break order"
        );
    }

    #[test]
    fn bandwidth_affects_completion_time() {
        let link = LinkConfig {
            latency: LatencyModel::Constant(Duration::from_micros(100)),
            bandwidth: Some(1_000_000),
            ..LinkConfig::default()
        };
        struct Big;
        impl Process for Big {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut ProcessCtx<'_, ()>) {
                if ctx.id() == NodeId(0) {
                    ctx.send(NodeId(1), (), 9_900); // 9.9ms at 1MB/s
                }
            }
            fn on_message(&mut self, _: &mut ProcessCtx<'_, ()>, _: NodeId, _: ()) {}
        }
        let mut sim = Simulation::new(1, NetworkConfig::uniform(link), vec![Big, Big]);
        sim.run_to_quiescence();
        assert_eq!(sim.now(), SimTime::from_micros(10_000));
    }
}
