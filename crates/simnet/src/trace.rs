//! Execution tracing for debugging and assertions in tests.

use core::fmt;

use crate::net::NodeId;
use crate::time::SimTime;

/// One observable scheduling event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message was accepted for transmission.
    Sent {
        /// Virtual time of the send.
        time: SimTime,
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Payload size in bytes.
        bytes: usize,
    },
    /// A message reached its destination.
    Delivered {
        /// Virtual time of the delivery.
        time: SimTime,
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Payload size in bytes.
        bytes: usize,
    },
    /// A message was lost (drop or partition).
    Lost {
        /// Virtual time of the send.
        time: SimTime,
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
    },
    /// A timer fired on a node.
    TimerFired {
        /// Virtual time of the firing.
        time: SimTime,
        /// Owning node.
        node: NodeId,
    },
    /// Free-form application annotation.
    Note {
        /// Virtual time of the note.
        time: SimTime,
        /// Node that emitted it.
        node: NodeId,
        /// The annotation.
        text: String,
    },
}

impl TraceEvent {
    /// Virtual time at which the event occurred.
    #[must_use]
    pub fn time(&self) -> SimTime {
        match self {
            TraceEvent::Sent { time, .. }
            | TraceEvent::Delivered { time, .. }
            | TraceEvent::Lost { time, .. }
            | TraceEvent::TimerFired { time, .. }
            | TraceEvent::Note { time, .. } => *time,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Sent {
                time,
                from,
                to,
                bytes,
            } => {
                write!(f, "{time} {from}→{to} send {bytes}B")
            }
            TraceEvent::Delivered {
                time,
                from,
                to,
                bytes,
            } => {
                write!(f, "{time} {from}→{to} deliver {bytes}B")
            }
            TraceEvent::Lost { time, from, to } => write!(f, "{time} {from}→{to} lost"),
            TraceEvent::TimerFired { time, node } => write!(f, "{time} {node} timer"),
            TraceEvent::Note { time, node, text } => write!(f, "{time} {node} note: {text}"),
        }
    }
}

/// A bounded in-memory log of [`TraceEvent`]s.
///
/// Disabled by default (zero overhead); enable with [`Trace::enable`] in
/// tests that assert on schedules. The log stops growing at its capacity
/// and counts how many events were discarded.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    events: Vec<TraceEvent>,
    overflowed: u64,
}

impl Trace {
    /// Default maximum retained events.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Creates a disabled trace.
    #[must_use]
    pub fn new() -> Self {
        Trace {
            enabled: false,
            capacity: Self::DEFAULT_CAPACITY,
            events: Vec::new(),
            overflowed: 0,
        }
    }

    /// Starts recording (optionally bounding retained events).
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Sets the retention bound.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
    }

    /// Whether recording is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event (no-op when disabled).
    pub fn record(&mut self, ev: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.capacity {
            self.overflowed += 1;
            return;
        }
        self.events.push(ev);
    }

    /// The retained events in order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// How many events were discarded after the capacity was reached.
    #[must_use]
    pub fn overflowed(&self) -> u64 {
        self.overflowed
    }

    /// Number of deliveries to `node` in the log.
    #[must_use]
    pub fn deliveries_to(&self, node: NodeId) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Delivered { to, .. } if *to == node))
            .count()
    }

    /// Clears the log (keeps enablement and capacity).
    pub fn clear(&mut self) {
        self.events.clear();
        self.overflowed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(us: u64) -> TraceEvent {
        TraceEvent::Sent {
            time: SimTime::from_micros(us),
            from: NodeId(0),
            to: NodeId(1),
            bytes: 8,
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.record(ev(1));
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::new();
        t.enable();
        t.record(ev(1));
        t.record(ev(2));
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].time(), SimTime::from_micros(1));
    }

    #[test]
    fn capacity_bounds_growth() {
        let mut t = Trace::new();
        t.enable();
        t.set_capacity(2);
        for i in 0..5 {
            t.record(ev(i));
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.overflowed(), 3);
        t.clear();
        assert!(t.events().is_empty());
        assert_eq!(t.overflowed(), 0);
    }

    #[test]
    fn deliveries_to_filters() {
        let mut t = Trace::new();
        t.enable();
        t.record(TraceEvent::Delivered {
            time: SimTime::ZERO,
            from: NodeId(0),
            to: NodeId(1),
            bytes: 4,
        });
        t.record(TraceEvent::Delivered {
            time: SimTime::ZERO,
            from: NodeId(0),
            to: NodeId(2),
            bytes: 4,
        });
        assert_eq!(t.deliveries_to(NodeId(1)), 1);
        assert_eq!(t.deliveries_to(NodeId(9)), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ev(1000).to_string(), "t=1ms n0→n1 send 8B");
        let lost = TraceEvent::Lost {
            time: SimTime::ZERO,
            from: NodeId(2),
            to: NodeId(3),
        };
        assert_eq!(lost.to_string(), "t=0us n2→n3 lost");
        let note = TraceEvent::Note {
            time: SimTime::ZERO,
            node: NodeId(1),
            text: "hello".into(),
        };
        assert_eq!(note.to_string(), "t=0us n1 note: hello");
        let timer = TraceEvent::TimerFired {
            time: SimTime::ZERO,
            node: NodeId(4),
        };
        assert_eq!(timer.to_string(), "t=0us n4 timer");
        let del = TraceEvent::Delivered {
            time: SimTime::ZERO,
            from: NodeId(0),
            to: NodeId(1),
            bytes: 2,
        };
        assert_eq!(del.to_string(), "t=0us n0→n1 deliver 2B");
    }
}
