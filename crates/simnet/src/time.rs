//! Virtual time: [`SimTime`] instants and [`Duration`] spans, microsecond
//! resolution.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A span of virtual time in microseconds.
///
/// # Examples
///
/// ```
/// use simnet::Duration;
/// assert_eq!(Duration::from_millis(2) + Duration::from_micros(5),
///            Duration::from_micros(2005));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Span of `us` microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Span of `ms` milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    /// Span of `s` seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// The span in microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in (truncated) milliseconds.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The span in fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating multiplication by a scalar.
    #[must_use]
    pub fn saturating_mul(self, k: u64) -> Self {
        Duration(self.0.saturating_mul(k))
    }
}

impl Add for Duration {
    type Output = Duration;

    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 && self.0.is_multiple_of(1_000_000) {
            write!(f, "{}s", self.0 / 1_000_000)
        } else if self.0 >= 1_000 && self.0.is_multiple_of(1_000) {
            write!(f, "{}ms", self.0 / 1_000)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

/// An instant of virtual time (microseconds since simulation start).
///
/// # Examples
///
/// ```
/// use simnet::{SimTime, Duration};
/// let t = SimTime::ZERO + Duration::from_millis(5);
/// assert_eq!(t.as_micros(), 5_000);
/// assert_eq!(t - SimTime::ZERO, Duration::from_millis(5));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Instant at `us` microseconds after the epoch.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since the epoch.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds since the epoch.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.as_micros())
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_micros();
    }
}

impl Sub for SimTime {
    type Output = Duration;

    /// Time elapsed from `rhs` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> Duration {
        Duration::from_micros(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction went negative"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", Duration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units() {
        assert_eq!(Duration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(Duration::from_millis(1).as_micros(), 1_000);
        assert_eq!(Duration::from_millis(1500).as_millis(), 1500);
        assert!((Duration::from_millis(500).as_secs_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + Duration::from_micros(10);
        let u = t + Duration::from_micros(5);
        assert_eq!(u - t, Duration::from_micros(5));
        let mut v = t;
        v += Duration::from_micros(1);
        assert_eq!(v.as_micros(), 11);
        assert_eq!(
            Duration::from_micros(2).saturating_mul(u64::MAX),
            Duration(u64::MAX)
        );
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_elapsed_panics() {
        let _ = SimTime::ZERO - SimTime::from_micros(1);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(Duration::from_millis(1) > Duration::from_micros(999));
    }

    #[test]
    fn display_picks_readable_units() {
        assert_eq!(Duration::from_secs(2).to_string(), "2s");
        assert_eq!(Duration::from_millis(3).to_string(), "3ms");
        assert_eq!(Duration::from_micros(7).to_string(), "7us");
        assert_eq!(Duration::from_micros(1500).to_string(), "1500us");
        assert_eq!(SimTime::from_micros(2_000).to_string(), "t=2ms");
    }
}
